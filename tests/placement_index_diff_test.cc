// Differential harness for the free-capacity placement index.
//
// The index-backed FindPlacement/CanPlace must be observably indistinguishable
// from the legacy full-scan reference (FindPlacementScan) — not just "a valid
// placement" but the exact same shards in the exact same order, so that every
// downstream artifact (SimulationResult, NDJSON event streams, bench tables)
// stays byte-identical. This file drives that equivalence three ways:
//
//   * Randomized alloc/release/offline/online sequences over small clusters,
//     cross-checking index vs scan for a sweep of demands, relax levels, and
//     placer configurations after every mutation, and running
//     Cluster::DebugCheckIndex's full rescan each step.
//   * A fragmentation-heavy adversarial sequence that keeps many servers at
//     equal free counts, stressing the tie-break orders.
//   * Whole simulations (including machine faults, checkpointing, migration,
//     and the prerun pool) run twice — scan placer vs index placer — whose
//     scheduler event streams must serialize to byte-identical NDJSON.

#include "src/sched/placement.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "src/common/rng.h"
#include "src/core/experiment.h"
#include "src/fault/fault_process.h"
#include "src/obs/event_log.h"

namespace philly {
namespace {

// Three SKUs so the single-server fold crosses capacity-group boundaries in
// both directions (8 -> 2 -> 4).
ClusterConfig MixedSkus() {
  ClusterConfig config;
  config.skus.push_back({/*racks=*/2, /*servers_per_rack=*/4, /*gpus_per_server=*/8});
  config.skus.push_back({/*racks=*/1, /*servers_per_rack=*/6, /*gpus_per_server=*/2});
  config.skus.push_back({/*racks=*/2, /*servers_per_rack=*/3, /*gpus_per_server=*/4});
  return config;
}

std::string ShardsToString(const Placement& placement) {
  return EncodePlacement(placement);
}

// Asserts the index path and the scan path agree for one query, shard for
// shard, and that CanPlace tells the same story as FindPlacement.
void ExpectSameSearch(const LocalityPlacer& placer, const Cluster& cluster,
                      int gpus, int level) {
  const auto scan = placer.FindPlacementScan(cluster, gpus, level);
  const auto indexed = placer.FindPlacement(cluster, gpus, level);
  ASSERT_EQ(scan.has_value(), indexed.has_value())
      << "gpus=" << gpus << " level=" << level;
  if (scan.has_value()) {
    ASSERT_EQ(ShardsToString(*scan), ShardsToString(*indexed))
        << "gpus=" << gpus << " level=" << level;
  }
  ASSERT_EQ(placer.CanPlace(cluster, gpus, level), indexed.has_value())
      << "gpus=" << gpus << " level=" << level;
}

void CheckIndex(const Cluster& cluster) {
  std::string error;
  ASSERT_TRUE(cluster.DebugCheckIndex(&error)) << error;
}

// The placer configurations the simulator actually uses: the default packing
// placer, the §5 dedicated-servers ablation, and a tight spread cap.
std::vector<LocalityPlacer> PlacerVariants() {
  std::vector<LocalityPlacer> placers;
  placers.emplace_back();
  PlacerConfig dedicated;
  dedicated.pack_small_jobs = false;
  placers.emplace_back(dedicated);
  PlacerConfig tight;
  tight.max_spread_servers = 3;
  placers.emplace_back(tight);
  return placers;
}

void SweepQueries(const std::vector<LocalityPlacer>& placers,
                  const Cluster& cluster) {
  for (const LocalityPlacer& placer : placers) {
    for (int gpus : {1, 2, 3, 5, 8, 9, 16, 24}) {
      for (int level = 0; level <= kMaxRelaxLevel; ++level) {
        ExpectSameSearch(placer, cluster, gpus, level);
        if (::testing::Test::HasFatalFailure()) {
          return;
        }
      }
    }
  }
}

class RandomizedDiff
    : public ::testing::TestWithParam<std::tuple<uint64_t, bool>> {};

TEST_P(RandomizedDiff, IndexMatchesScanUnderChurn) {
  const auto [seed, mixed] = GetParam();
  Rng rng(seed);
  Cluster cluster(mixed ? MixedSkus() : ClusterConfig::Small());
  const std::vector<LocalityPlacer> placers = PlacerVariants();
  const LocalityPlacer& allocator = placers.front();

  JobId next = 1;
  std::vector<JobId> held;
  std::vector<ServerId> offline;
  for (int step = 0; step < 700; ++step) {
    const double roll = rng.Uniform();
    if (roll < 0.45) {
      // Allocate through the index path; the sweep below already proved it
      // equal to the scan for every (gpus, level) pair this can draw.
      const int gpus = static_cast<int>(rng.Between(1, 20));
      const int level = static_cast<int>(rng.Between(0, kMaxRelaxLevel));
      const auto placement = allocator.FindPlacement(cluster, gpus, level);
      if (placement.has_value()) {
        ASSERT_TRUE(cluster.Allocate(next, *placement));
        held.push_back(next++);
      }
    } else if (roll < 0.80) {
      if (!held.empty()) {
        const size_t pick = rng.Below(held.size());
        cluster.Release(held[pick]);
        held.erase(held.begin() + static_cast<long>(pick));
      }
    } else if (roll < 0.90) {
      // Machine fault: kill every tenant of a random server (the simulator
      // releases gangs before draining the machine), then take it offline.
      const ServerId victim =
          static_cast<ServerId>(rng.Below(static_cast<uint64_t>(cluster.NumServers())));
      if (!cluster.ServerOffline(victim)) {
        while (!cluster.TenantsOnServer(victim).empty()) {
          const JobId job = cluster.TenantsOnServer(victim).front().job;
          cluster.Release(job);
          held.erase(std::find(held.begin(), held.end(), job));
          CheckIndex(cluster);
        }
        cluster.SetServerOffline(victim, true);
        offline.push_back(victim);
      }
    } else if (!offline.empty()) {
      // Repair: bring a random offline server back.
      const size_t pick = rng.Below(offline.size());
      cluster.SetServerOffline(offline[pick], false);
      offline.erase(offline.begin() + static_cast<long>(pick));
    }
    CheckIndex(cluster);
    SweepQueries(placers, cluster);
    if (HasFatalFailure()) {
      FAIL() << "diverged at step " << step << " (seed " << seed << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedDiff,
                         ::testing::Combine(::testing::Values(3, 17, 101),
                                            ::testing::Bool()));

// Every 8-GPU server held at the same free count exercises the id tie-breaks
// (bucket iteration order) rather than the free-count ordering.
TEST(PlacementIndexDiffTest, UniformFragmentationStressesTieBreaks) {
  Cluster cluster(ClusterConfig::Small());
  const std::vector<LocalityPlacer> placers = PlacerVariants();
  JobId next = 1;
  for (int used = 1; used <= 7; ++used) {
    for (ServerId s = 0; s < cluster.NumServers(); ++s) {
      if (cluster.ServerCapacity(s) < 8) {
        continue;
      }
      Placement p;
      p.shards.push_back({s, 1});
      ASSERT_TRUE(cluster.Allocate(next++, p));
      CheckIndex(cluster);
    }
    SweepQueries(placers, cluster);
    ASSERT_FALSE(::testing::Test::HasFatalFailure()) << "used=" << used;
  }
}

TEST(PlacementIndexDiffTest, OfflineServersNeverSurfaceFromTheIndex) {
  Cluster cluster(ClusterConfig::Small());
  LocalityPlacer placer;
  // Take rack 0 fully offline; placements must come from the other racks and
  // both paths must agree on that.
  for (ServerId s : cluster.ServersInRack(0)) {
    cluster.SetServerOffline(s, true);
    CheckIndex(cluster);
  }
  for (int gpus : {1, 8, 16}) {
    for (int level = 0; level <= kMaxRelaxLevel; ++level) {
      ExpectSameSearch(placer, cluster, gpus, level);
      const auto placement = placer.FindPlacement(cluster, gpus, level);
      if (placement.has_value()) {
        for (const PlacementShard& shard : placement->shards) {
          EXPECT_NE(cluster.ServerRack(shard.server), 0);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Whole-simulation byte-identity: the same experiment run with the scan
// placer and with the index placer must emit byte-identical scheduler event
// streams (which encode every placement) and identical decision counters.

std::string RunAndSerialize(ExperimentConfig config, bool use_scan,
                            SimulationResult* result_out) {
  EventLog log;
  config.simulation.obs.event_log = &log;
  config.simulation.scheduler.placer.use_scan_reference = use_scan;
  ExperimentRun run = RunExperiment(config);
  *result_out = std::move(run.result);
  std::ostringstream out;
  log.WriteNdjson(out);
  return out.str();
}

void ExpectByteIdenticalRuns(const ExperimentConfig& config) {
  SimulationResult scan_result;
  SimulationResult index_result;
  const std::string scan_events = RunAndSerialize(config, /*use_scan=*/true, &scan_result);
  const std::string index_events =
      RunAndSerialize(config, /*use_scan=*/false, &index_result);
  ASSERT_FALSE(scan_events.empty());
  EXPECT_EQ(scan_events, index_events);
  EXPECT_EQ(scan_result.jobs.size(), index_result.jobs.size());
  EXPECT_EQ(scan_result.preemptions, index_result.preemptions);
  EXPECT_EQ(scan_result.priority_preemptions, index_result.priority_preemptions);
  EXPECT_EQ(scan_result.migrations, index_result.migrations);
  EXPECT_EQ(scan_result.out_of_order_benign, index_result.out_of_order_benign);
}

TEST(PlacementIndexDiffTest, SimulationEventStreamByteIdentical) {
  ExpectByteIdenticalRuns(ExperimentConfig::BenchScale(/*days=*/1, /*seed=*/11));
}

TEST(PlacementIndexDiffTest, SimulationWithFaultsAndMigrationByteIdentical) {
  ExperimentConfig config = ExperimentConfig::BenchScale(/*days=*/1, /*seed=*/7);
  config.simulation.fault = FaultProcessConfig::Calibrated();
  config.simulation.scheduler.checkpoint_period = Minutes(360);
  config.simulation.scheduler.enable_migration = true;
  config.simulation.scheduler.enable_prerun_pool = true;
  ExpectByteIdenticalRuns(config);
}

TEST(PlacementIndexDiffTest, SimulationDedicatedStrictLocalityByteIdentical) {
  ExperimentConfig config = ExperimentConfig::BenchScale(/*days=*/1, /*seed=*/9);
  config.simulation.scheduler.placer.pack_small_jobs = false;
  config.simulation.scheduler.max_relax_level = 0;
  ExpectByteIdenticalRuns(config);
}

}  // namespace
}  // namespace philly
