// Property-based placement tests, run against BOTH implementations — the
// index-backed search and the legacy full-scan reference — over randomized
// cluster states. Whatever else the two paths agree on (see
// placement_index_diff_test.cc for exact equivalence), any placement either
// returns must satisfy the placement contract:
//
//   * shards sum to exactly the requested GPU count;
//   * no shard exceeds its server's free capacity, and no server repeats,
//     so Cluster::Allocate accepts the gang verbatim;
//   * the spread caps hold: never more than max_spread_servers, at most 2
//     servers at relax level 1 and 4 at levels >= 2 for sub-server jobs;
//   * level 0 for jobs up to one server's capacity means exactly one server,
//     and levels <= 1 never cross an RDMA (rack) boundary;
//   * offline servers are never chosen.

#include "src/sched/placement.h"

#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <vector>

#include "src/common/rng.h"

namespace philly {
namespace {

ClusterConfig MixedSkus() {
  ClusterConfig config;
  config.skus.push_back({/*racks=*/2, /*servers_per_rack=*/4, /*gpus_per_server=*/8});
  config.skus.push_back({/*racks=*/1, /*servers_per_rack=*/6, /*gpus_per_server=*/2});
  config.skus.push_back({/*racks=*/2, /*servers_per_rack=*/3, /*gpus_per_server=*/4});
  return config;
}

// Applies random load and takes a few servers offline so searches see
// fragmentation, full servers, and missing machines.
void Churn(Rng& rng, Cluster& cluster, const LocalityPlacer& placer) {
  JobId next = 1;
  std::vector<JobId> held;
  for (int i = 0; i < 60; ++i) {
    const int gpus = static_cast<int>(rng.Between(1, 16));
    const auto placement =
        placer.FindPlacement(cluster, gpus, static_cast<int>(rng.Between(0, 3)));
    if (placement.has_value()) {
      ASSERT_TRUE(cluster.Allocate(next, *placement));
      held.push_back(next++);
    }
    if (!held.empty() && rng.Bernoulli(0.4)) {
      const size_t pick = rng.Below(held.size());
      cluster.Release(held[pick]);
      held.erase(held.begin() + static_cast<long>(pick));
    }
  }
  for (int i = 0; i < 2; ++i) {
    const ServerId victim =
        static_cast<ServerId>(rng.Below(static_cast<uint64_t>(cluster.NumServers())));
    if (!cluster.ServerOffline(victim)) {
      while (!cluster.TenantsOnServer(victim).empty()) {
        cluster.Release(cluster.TenantsOnServer(victim).front().job);
      }
      cluster.SetServerOffline(victim, true);
    }
  }
}

void CheckPlacementContract(const Cluster& cluster, const PlacerConfig& config,
                            const Placement& placement, int gpus, int level,
                            int max_server_cap) {
  EXPECT_EQ(placement.NumGpus(), gpus);
  EXPECT_LE(placement.NumServers(), config.max_spread_servers);
  std::set<ServerId> servers;
  std::set<RackId> racks;
  for (const PlacementShard& shard : placement.shards) {
    EXPECT_GT(shard.gpus, 0);
    EXPECT_LE(shard.gpus, cluster.ServerFree(shard.server));
    EXPECT_FALSE(cluster.ServerOffline(shard.server));
    EXPECT_TRUE(servers.insert(shard.server).second)
        << "server " << shard.server << " repeated";
    racks.insert(cluster.ServerRack(shard.server));
  }
  if (level <= 1) {
    EXPECT_EQ(racks.size(), 1u) << "level " << level << " crossed racks";
  }
  if (gpus <= max_server_cap) {
    // Sub-server / whole-server jobs: the relaxation ladder caps the spread.
    if (level == 0) {
      EXPECT_EQ(placement.NumServers(), 1);
    } else if (level == 1) {
      EXPECT_LE(placement.NumServers(), 2);
    } else {
      EXPECT_LE(placement.NumServers(), 4);
    }
  }
  // The gang must be allocatable exactly as returned.
  Cluster copy = cluster;
  EXPECT_TRUE(copy.Allocate(999999, placement));
}

class PlacementProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, bool, bool>> {};

TEST_P(PlacementProperty, PlacementsSatisfyTheContract) {
  const auto [seed, mixed, use_scan] = GetParam();
  Rng rng(seed);
  Cluster cluster(mixed ? MixedSkus() : ClusterConfig::Small());

  for (PlacerConfig config :
       {PlacerConfig{}, PlacerConfig{/*pack_small_jobs=*/false, 16, false},
        PlacerConfig{true, /*max_spread_servers=*/3, false}}) {
    config.use_scan_reference = use_scan;
    const LocalityPlacer placer(config);
    Cluster state = cluster;
    Churn(rng, state, placer);
    const int max_server_cap = state.MaxServerCapacity();
    for (int gpus : {1, 2, 3, 4, 5, 7, 8, 9, 12, 16, 17, 24, 32}) {
      for (int level = 0; level <= kMaxRelaxLevel; ++level) {
        const auto placement = placer.FindPlacement(state, gpus, level);
        EXPECT_EQ(placer.CanPlace(state, gpus, level), placement.has_value());
        if (placement.has_value()) {
          CheckPlacementContract(state, config, *placement, gpus, level,
                                 max_server_cap);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacementProperty,
                         ::testing::Combine(::testing::Values(5, 23, 59, 127),
                                            ::testing::Bool(),
                                            ::testing::Bool()));

// Demands above the free total (or above what any relax level could gather)
// must fail on both paths without touching the cluster.
TEST(PlacementPropertyTest, InfeasibleDemandsFailCleanly) {
  for (const bool use_scan : {false, true}) {
    PlacerConfig config;
    config.use_scan_reference = use_scan;
    const LocalityPlacer placer(config);
    Cluster cluster(ClusterConfig::Small());
    EXPECT_FALSE(placer.FindPlacement(cluster, cluster.NumGpus() + 1, 3).has_value());
    EXPECT_FALSE(placer.CanPlace(cluster, cluster.NumGpus() + 1, 3));
    // Entirely offline cluster: nothing is placeable.
    for (ServerId s = 0; s < cluster.NumServers(); ++s) {
      cluster.SetServerOffline(s, true);
    }
    for (int level = 0; level <= kMaxRelaxLevel; ++level) {
      EXPECT_FALSE(placer.FindPlacement(cluster, 1, level).has_value());
    }
  }
}

}  // namespace
}  // namespace philly
