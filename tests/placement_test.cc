#include "src/sched/placement.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace philly {
namespace {

// Small(): racks 0-1 are 4x 8-GPU servers; rack 2 is 4x 2-GPU servers.

TEST(PlacerTest, SingleGpuPacksBestFit) {
  Cluster cluster(ClusterConfig::Small());
  LocalityPlacer placer;
  // Server 1 has 6 free (tightest fit), server 0 full, others empty.
  Placement preload;
  preload.shards.push_back({1, 2});
  ASSERT_TRUE(cluster.Allocate(99, preload));
  Placement full;
  full.shards.push_back({0, 8});
  ASSERT_TRUE(cluster.Allocate(98, full));

  const auto placement = placer.FindPlacement(cluster, 1, 0);
  ASSERT_TRUE(placement.has_value());
  ASSERT_EQ(placement->NumServers(), 1);
  // Best fit prefers the 2-GPU SKU servers (2 free) over server 1 (6 free).
  EXPECT_EQ(cluster.ServerCapacity(placement->shards[0].server), 2);
}

TEST(PlacerTest, DedicatedModeSpreadsSmallJobs) {
  Cluster cluster(ClusterConfig::Small());
  PlacerConfig config;
  config.pack_small_jobs = false;
  LocalityPlacer placer(config);
  Placement preload;
  preload.shards.push_back({1, 2});
  ASSERT_TRUE(cluster.Allocate(99, preload));

  const auto placement = placer.FindPlacement(cluster, 1, 0);
  ASSERT_TRUE(placement.has_value());
  // Worst fit: an empty 8-GPU server.
  EXPECT_EQ(cluster.ServerFree(placement->shards[0].server), 8);
}

TEST(PlacerTest, WholeServerJobTakesOneServer) {
  Cluster cluster(ClusterConfig::Small());
  LocalityPlacer placer;
  const auto placement = placer.FindPlacement(cluster, 8, 0);
  ASSERT_TRUE(placement.has_value());
  EXPECT_EQ(placement->NumServers(), 1);
  EXPECT_EQ(placement->NumGpus(), 8);
}

TEST(PlacerTest, StrictLevelZeroRequiresSingleServerForSmall) {
  Cluster cluster(ClusterConfig::Small());
  LocalityPlacer placer;
  // Leave at most 3 free on every 8-GPU server; 2-GPU servers full.
  for (ServerId s = 0; s < cluster.NumServers(); ++s) {
    const int cap = cluster.ServerCapacity(s);
    Placement p;
    p.shards.push_back({s, cap == 8 ? 5 : 2});
    ASSERT_TRUE(cluster.Allocate(100 + s, p));
  }
  EXPECT_FALSE(placer.FindPlacement(cluster, 4, 0).has_value());
  // Relaxed: two servers within one rack are allowed.
  const auto relaxed = placer.FindPlacement(cluster, 4, 1);
  ASSERT_TRUE(relaxed.has_value());
  EXPECT_LE(relaxed->NumServers(), 2);
  const RackId rack = cluster.ServerRack(relaxed->shards[0].server);
  for (const auto& shard : relaxed->shards) {
    EXPECT_EQ(cluster.ServerRack(shard.server), rack);
  }
}

TEST(PlacerTest, MultiServerStrictUsesMinimumFullServers) {
  Cluster cluster(ClusterConfig::Small());
  LocalityPlacer placer;
  const auto placement = placer.FindPlacement(cluster, 16, 0);
  ASSERT_TRUE(placement.has_value());
  EXPECT_EQ(placement->NumServers(), 2);
  const RackId rack = cluster.ServerRack(placement->shards[0].server);
  for (const auto& shard : placement->shards) {
    EXPECT_EQ(shard.gpus, 8);
    EXPECT_EQ(cluster.ServerRack(shard.server), rack);
  }
}

TEST(PlacerTest, StrictMultiServerFailsWhenRackFragmented) {
  Cluster cluster(ClusterConfig::Small());
  LocalityPlacer placer;
  // One GPU on each 8-GPU server: no fully-free server remains.
  for (RackId r = 0; r < 2; ++r) {
    for (ServerId s : cluster.ServersInRack(r)) {
      Placement p;
      p.shards.push_back({s, 1});
      ASSERT_TRUE(cluster.Allocate(200 + s, p));
    }
  }
  EXPECT_FALSE(placer.FindPlacement(cluster, 16, 0).has_value());
  // Level 1 allows any servers within one rack: 4 servers x 7 free = 28 >= 16.
  const auto relaxed = placer.FindPlacement(cluster, 16, 1);
  ASSERT_TRUE(relaxed.has_value());
  const RackId rack = cluster.ServerRack(relaxed->shards[0].server);
  for (const auto& shard : relaxed->shards) {
    EXPECT_EQ(cluster.ServerRack(shard.server), rack);
  }
}

TEST(PlacerTest, FullyRelaxedCrossesRacks) {
  Cluster cluster(ClusterConfig::Small());
  LocalityPlacer placer;
  // 5 GPUs free per 8-GPU rack server after preloading 3 each.
  for (RackId r = 0; r < 2; ++r) {
    for (ServerId s : cluster.ServersInRack(r)) {
      Placement p;
      p.shards.push_back({s, 3});
      ASSERT_TRUE(cluster.Allocate(300 + s, p));
    }
  }
  // 44 GPUs free overall (2x4x5 + 8); a 42-GPU job needs cross-rack spread.
  EXPECT_FALSE(placer.FindPlacement(cluster, 42, 1).has_value());
  const auto placement = placer.FindPlacement(cluster, 42, 3);
  ASSERT_TRUE(placement.has_value());
  EXPECT_EQ(placement->NumGpus(), 42);
}

TEST(PlacerTest, SpreadCapRespected) {
  Cluster cluster(ClusterConfig::Small());
  PlacerConfig config;
  config.max_spread_servers = 3;
  LocalityPlacer placer(config);
  // 2 free GPUs per 8-GPU server.
  for (RackId r = 0; r < 2; ++r) {
    for (ServerId s : cluster.ServersInRack(r)) {
      Placement p;
      p.shards.push_back({s, 6});
      ASSERT_TRUE(cluster.Allocate(400 + s, p));
    }
  }
  // 12 GPUs would need 6 servers at 2 free each: over the cap of 3.
  EXPECT_FALSE(placer.FindPlacement(cluster, 12, 3).has_value());
  EXPECT_TRUE(placer.FindPlacement(cluster, 6, 3).has_value());
}

TEST(PlacerTest, InsufficientTotalGpusFailsFast) {
  Cluster cluster(ClusterConfig::Small());
  LocalityPlacer placer;
  EXPECT_FALSE(placer.FindPlacement(cluster, 1000, 3).has_value());
}

TEST(PlacerTest, PrefersEmptierRackForBigJobs) {
  Cluster cluster(ClusterConfig::Small());
  LocalityPlacer placer;
  // Rack 0 partially used; rack 1 empty.
  Placement p;
  p.shards.push_back({0, 8});
  ASSERT_TRUE(cluster.Allocate(1, p));
  const auto placement = placer.FindPlacement(cluster, 16, 0);
  ASSERT_TRUE(placement.has_value());
  for (const auto& shard : placement->shards) {
    EXPECT_EQ(cluster.ServerRack(shard.server), 1);
  }
}

TEST(PlacerTest, NeverReturnsInvalidPlacement) {
  // Fuzz: placements returned must always be allocatable.
  Rng rng(99);
  Cluster cluster(ClusterConfig::Small());
  LocalityPlacer placer;
  JobId next = 1;
  std::vector<JobId> held;
  for (int step = 0; step < 3000; ++step) {
    const int gpus = static_cast<int>(rng.Between(1, 24));
    const int level = static_cast<int>(rng.Between(0, 3));
    const auto placement = placer.FindPlacement(cluster, gpus, level);
    if (placement.has_value()) {
      ASSERT_EQ(placement->NumGpus(), gpus);
      ASSERT_TRUE(cluster.Allocate(next, *placement));
      held.push_back(next++);
    }
    if (!held.empty() && rng.Bernoulli(0.5)) {
      const size_t pick = rng.Below(held.size());
      cluster.Release(held[pick]);
      held.erase(held.begin() + static_cast<long>(pick));
    }
  }
}

// Relaxation ladder property: if a placement exists at level L, one exists at
// every level above L (monotone feasibility).
class RelaxMonotonicity : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RelaxMonotonicity, HigherLevelsNeverLoseFeasibility) {
  Rng rng(GetParam());
  Cluster cluster(ClusterConfig::Small());
  LocalityPlacer placer;
  // Random partial load.
  JobId next = 1;
  for (int i = 0; i < 20; ++i) {
    const int gpus = static_cast<int>(rng.Between(1, 8));
    const auto placement = placer.FindPlacement(cluster, gpus, 3);
    if (placement.has_value()) {
      ASSERT_TRUE(cluster.Allocate(next++, *placement));
    }
  }
  for (int gpus : {1, 2, 4, 8, 12, 16, 24}) {
    bool feasible_below = false;
    for (int level = 0; level <= kMaxRelaxLevel; ++level) {
      const bool feasible = placer.FindPlacement(cluster, gpus, level).has_value();
      if (feasible_below) {
        EXPECT_TRUE(feasible) << "gpus=" << gpus << " level=" << level;
      }
      feasible_below |= feasible;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelaxMonotonicity,
                         ::testing::Values(2, 11, 29, 47, 83, 131));

}  // namespace
}  // namespace philly
