// Validation of the scheduler runtime against closed-form queueing theory.
//
// With 1-GPU jobs, exponential service, Poisson arrivals, no failures, no
// kills, and one server of c GPUs, the simulator is an M/M/c queue with FIFO
// discipline: its mean waiting time must match the Erlang-C formula. This
// pins the event engine, the scheduling-pass triggering, and the queue
// bookkeeping against ground truth mathematics.

#include <gtest/gtest.h>

#include <cmath>

#include "src/sched/simulation.h"

namespace philly {
namespace {

// Erlang-C probability of waiting for c servers at offered load a (Erlangs).
double ErlangC(int c, double a) {
  double sum = 0.0;
  double term = 1.0;  // a^k / k!
  for (int k = 0; k < c; ++k) {
    sum += term;
    term *= a / (k + 1);
  }
  // term is now a^c / c!.
  const double last = term * c / (c - a);
  return last / (sum + last);
}

struct MmcSetup {
  int servers_gpus = 8;
  double offered_load = 6.4;            // Erlangs
  double mean_service_seconds = 600.0;  // E[S]
  int num_jobs = 150000;
};

SimulationResult RunMmc(const MmcSetup& setup, uint64_t seed) {
  // One 8-GPU server; 1-GPU jobs: any free GPU serves any job.
  ClusterConfig cluster;
  cluster.skus.push_back({1, 1, setup.servers_gpus});

  const double lambda = setup.offered_load / setup.mean_service_seconds;  // per sec
  Rng rng(seed);
  std::vector<JobSpec> jobs;
  jobs.reserve(static_cast<size_t>(setup.num_jobs));
  SimTime t = 0;
  for (int i = 0; i < setup.num_jobs; ++i) {
    t += static_cast<SimTime>(std::ceil(rng.Exponential(1.0 / lambda)));
    JobSpec job;
    job.id = i + 1;
    job.vc = 0;
    job.submit_time = t;
    job.num_gpus = 1;
    job.planned_duration =
        std::max<SimDuration>(1, static_cast<SimDuration>(std::llround(
                                     rng.Exponential(setup.mean_service_seconds))));
    job.planned_epochs = 10;
    jobs.push_back(job);
  }

  SimulationConfig config;
  config.cluster = cluster;
  config.vcs = {{"mmc", setup.servers_gpus, 1.0, 1.0, true}};
  config.failure.failure_scale = 0.0;  // pure service times
  config.scheduler.enable_preemption = false;
  config.seed = seed;
  ClusterSimulation sim(config, std::move(jobs));
  return sim.Run();
}

TEST(QueueingTheoryTest, MeanWaitMatchesErlangC) {
  const MmcSetup setup;
  const SimulationResult result = RunMmc(setup, 11);

  double wait_sum = 0.0;
  double service_sum = 0.0;
  for (const auto& job : result.jobs) {
    EXPECT_EQ(job.status, JobStatus::kPassed);
    wait_sum += static_cast<double>(job.InitialQueueDelay());
    service_sum += static_cast<double>(job.TotalRunTime());
  }
  const double measured_wait = wait_sum / static_cast<double>(result.jobs.size());
  const double measured_service =
      service_sum / static_cast<double>(result.jobs.size());

  // Theory: Wq = C(c, a) * E[S] / (c - a).
  const double c = setup.servers_gpus;
  const double a = setup.offered_load;
  const double expected_wait =
      ErlangC(setup.servers_gpus, a) * setup.mean_service_seconds / (c - a);

  EXPECT_NEAR(measured_service, setup.mean_service_seconds,
              setup.mean_service_seconds * 0.02);
  EXPECT_NEAR(measured_wait, expected_wait, expected_wait * 0.10)
      << "ErlangC=" << ErlangC(setup.servers_gpus, a);
}

TEST(QueueingTheoryTest, LowLoadMeansNoWaiting) {
  MmcSetup setup;
  setup.offered_load = 1.0;  // 12.5% load on 8 servers
  setup.num_jobs = 20000;
  const SimulationResult result = RunMmc(setup, 13);
  double wait_sum = 0.0;
  for (const auto& job : result.jobs) {
    wait_sum += static_cast<double>(job.InitialQueueDelay());
  }
  // Erlang-C predicts ~0.09s mean wait at this load.
  EXPECT_LT(wait_sum / static_cast<double>(result.jobs.size()), 2.0);
}

// Load sweep: measured mean wait tracks Erlang-C across utilization levels.
class ErlangSweep : public ::testing::TestWithParam<double> {};

TEST_P(ErlangSweep, TracksTheory) {
  MmcSetup setup;
  setup.offered_load = GetParam();
  setup.num_jobs = 200000;
  const SimulationResult result = RunMmc(setup, 17);
  // Trim the empty-queue warm-up (it biases the mean wait low, increasingly
  // so near saturation) and compute the *realized* offered load — the
  // integer-second rounding of gaps and services shifts it slightly.
  const size_t skip = result.jobs.size() / 10;
  double wait_sum = 0.0;
  double service_sum = 0.0;
  size_t n = 0;
  for (size_t i = skip; i < result.jobs.size(); ++i) {
    wait_sum += static_cast<double>(result.jobs[i].InitialQueueDelay());
    service_sum += static_cast<double>(result.jobs[i].TotalRunTime());
    ++n;
  }
  const double measured = wait_sum / static_cast<double>(n);
  const double mean_service = service_sum / static_cast<double>(n);
  const double mean_gap =
      static_cast<double>(result.jobs.back().spec.submit_time -
                          result.jobs[skip].spec.submit_time) /
      static_cast<double>(n - 1);
  const double a_eff = mean_service / mean_gap;
  const double expected = ErlangC(setup.servers_gpus, a_eff) * mean_service /
                          (setup.servers_gpus - a_eff);
  // Absolute slack covers integer-time rounding; relative slack covers
  // finite-sample noise (heavier near saturation).
  EXPECT_NEAR(measured, expected, 2.0 + expected * 0.15)
      << "offered load " << setup.offered_load << " (realized " << a_eff << ")";
}

INSTANTIATE_TEST_SUITE_P(Loads, ErlangSweep, ::testing::Values(4.0, 5.6, 6.4, 7.0));

}  // namespace
}  // namespace philly
