// Tests for the parallel experiment runner: the determinism contract
// (RunMany/RunSeeds results are byte-identical to serial RunExperiment for
// any thread count), ParallelFor coverage and error propagation, and the
// strict environment-knob parsing.
//
// The determinism test carries the `tsan` ctest label: build with
// -DPHILLY_SANITIZE=thread and run `ctest -L tsan` to prove the pool is
// data-race free.

#include "src/core/runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

namespace philly {
namespace {

void ExpectJobRecordsEqual(const JobRecord& a, const JobRecord& b) {
  EXPECT_EQ(a.spec.id, b.spec.id);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.finish_time, b.finish_time);
  EXPECT_EQ(a.started_out_of_order, b.started_out_of_order);
  EXPECT_EQ(a.out_of_order_benign, b.out_of_order_benign);
  EXPECT_EQ(a.overtaken, b.overtaken);
  EXPECT_EQ(a.executed_epochs, b.executed_epochs);
  EXPECT_EQ(a.gpu_seconds, b.gpu_seconds);

  ASSERT_EQ(a.waits.size(), b.waits.size());
  for (size_t i = 0; i < a.waits.size(); ++i) {
    EXPECT_EQ(a.waits[i].ready_time, b.waits[i].ready_time);
    EXPECT_EQ(a.waits[i].wait, b.waits[i].wait);
    EXPECT_EQ(a.waits[i].fair_share_time, b.waits[i].fair_share_time);
    EXPECT_EQ(a.waits[i].fragmentation_time, b.waits[i].fragmentation_time);
    EXPECT_EQ(a.waits[i].sched_attempts, b.waits[i].sched_attempts);
  }

  ASSERT_EQ(a.attempts.size(), b.attempts.size());
  for (size_t i = 0; i < a.attempts.size(); ++i) {
    const AttemptRecord& x = a.attempts[i];
    const AttemptRecord& y = b.attempts[i];
    EXPECT_EQ(x.index, y.index);
    EXPECT_EQ(x.start, y.start);
    EXPECT_EQ(x.end, y.end);
    EXPECT_EQ(x.failed, y.failed);
    EXPECT_EQ(x.preempted, y.preempted);
    EXPECT_EQ(x.machine_fault, y.machine_fault);
    EXPECT_EQ(x.prerun, y.prerun);
    EXPECT_EQ(x.true_reason, y.true_reason);
    EXPECT_EQ(x.log_tail, y.log_tail);
    ASSERT_EQ(x.placement.shards.size(), y.placement.shards.size());
    for (size_t s = 0; s < x.placement.shards.size(); ++s) {
      EXPECT_EQ(x.placement.shards[s].server, y.placement.shards[s].server);
      EXPECT_EQ(x.placement.shards[s].gpus, y.placement.shards[s].gpus);
    }
  }

  ASSERT_EQ(a.util_segments.size(), b.util_segments.size());
  for (size_t i = 0; i < a.util_segments.size(); ++i) {
    EXPECT_EQ(a.util_segments[i].expected_util, b.util_segments[i].expected_util);
    EXPECT_EQ(a.util_segments[i].duration, b.util_segments[i].duration);
    EXPECT_EQ(a.util_segments[i].num_servers, b.util_segments[i].num_servers);
  }
}

void ExpectRunsEqual(const ExperimentRun& a, const ExperimentRun& b) {
  EXPECT_EQ(a.num_jobs, b.num_jobs);
  EXPECT_EQ(a.result.scheduling_decisions, b.result.scheduling_decisions);
  EXPECT_EQ(a.result.out_of_order_decisions, b.result.out_of_order_decisions);
  EXPECT_EQ(a.result.out_of_order_benign, b.result.out_of_order_benign);
  EXPECT_EQ(a.result.preemptions, b.result.preemptions);
  EXPECT_EQ(a.result.migrations, b.result.migrations);
  EXPECT_EQ(a.result.priority_preemptions, b.result.priority_preemptions);
  EXPECT_EQ(a.result.prerun_jobs, b.result.prerun_jobs);
  EXPECT_EQ(a.result.prerun_catches, b.result.prerun_catches);
  EXPECT_EQ(a.result.prerun_gpu_seconds, b.result.prerun_gpu_seconds);
  EXPECT_EQ(a.result.machine_faults_injected, b.result.machine_faults_injected);
  EXPECT_EQ(a.result.machine_fault_server_downs, b.result.machine_fault_server_downs);
  EXPECT_EQ(a.result.machine_fault_kills, b.result.machine_fault_kills);
  EXPECT_EQ(a.result.machine_fault_lost_gpu_seconds,
            b.result.machine_fault_lost_gpu_seconds);

  ASSERT_EQ(a.result.occupancy_snapshots.size(), b.result.occupancy_snapshots.size());
  for (size_t i = 0; i < a.result.occupancy_snapshots.size(); ++i) {
    const auto& x = a.result.occupancy_snapshots[i];
    const auto& y = b.result.occupancy_snapshots[i];
    EXPECT_EQ(x.time, y.time);
    EXPECT_EQ(x.occupancy, y.occupancy);
    EXPECT_EQ(x.empty_server_fraction, y.empty_server_fraction);
    EXPECT_EQ(x.racks_with_empty_servers, y.racks_with_empty_servers);
    EXPECT_EQ(x.executed_epochs_total, y.executed_epochs_total);
    EXPECT_EQ(x.offline_servers, y.offline_servers);
    EXPECT_EQ(x.machine_fault_kills_total, y.machine_fault_kills_total);
    EXPECT_EQ(x.machine_fault_lost_gpu_seconds_total,
              y.machine_fault_lost_gpu_seconds_total);
  }

  ASSERT_EQ(a.result.jobs.size(), b.result.jobs.size());
  for (size_t i = 0; i < a.result.jobs.size(); ++i) {
    ExpectJobRecordsEqual(a.result.jobs[i], b.result.jobs[i]);
  }
}

// The core contract: RunSeeds through the pool must reproduce serial
// RunExperiment byte-for-byte — full job records, not just summary
// statistics — no matter how many worker threads execute the tasks.
TEST(ExperimentPoolTest, RunSeedsMatchesSerialForAnyThreadCount) {
  const ExperimentConfig base = ExperimentConfig::BenchScale(1);
  const std::vector<uint64_t> seeds = {42, 7, 99};

  std::vector<ExperimentRun> expected;
  for (const ExperimentConfig& config : ConfigsForSeeds(base, seeds)) {
    expected.push_back(RunExperiment(config));
  }

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const std::vector<int> thread_counts = {1, 2, hw > 0 ? hw : 1};
  for (const int threads : thread_counts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const ExperimentPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    const std::vector<ExperimentRun> runs = pool.RunSeeds(base, seeds);
    ASSERT_EQ(runs.size(), expected.size());
    for (size_t i = 0; i < runs.size(); ++i) {
      SCOPED_TRACE("seed=" + std::to_string(seeds[i]));
      ExpectRunsEqual(runs[i], expected[i]);
    }
  }
}

TEST(ExperimentPoolTest, ConfigsForSeedsSetBothSeeds) {
  ExperimentConfig base = ExperimentConfig::BenchScale(1, 5);
  const auto configs = ConfigsForSeeds(base, {11, 22});
  ASSERT_EQ(configs.size(), 2u);
  EXPECT_EQ(configs[0].workload.seed, 11u);
  EXPECT_EQ(configs[0].simulation.seed, 11u);
  EXPECT_EQ(configs[1].workload.seed, 22u);
  EXPECT_EQ(configs[1].simulation.seed, 22u);
}

TEST(ExperimentPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  constexpr int kTasks = 100;
  std::vector<std::atomic<int>> counts(kTasks);
  const ExperimentPool pool(4);
  pool.ParallelFor(kTasks, [&](int i) { counts[static_cast<size_t>(i)]++; });
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(counts[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ExperimentPoolTest, ParallelForHandlesZeroAndNegativeCounts) {
  const ExperimentPool pool(4);
  pool.ParallelFor(0, [](int) { FAIL() << "must not be called"; });
  pool.ParallelFor(-3, [](int) { FAIL() << "must not be called"; });
}

TEST(ExperimentPoolTest, ParallelForPropagatesTaskExceptions) {
  for (const int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const ExperimentPool pool(threads);
    EXPECT_THROW(pool.ParallelFor(8,
                                  [](int i) {
                                    if (i == 5) {
                                      throw std::runtime_error("task failure");
                                    }
                                  }),
                 std::runtime_error);
  }
}

TEST(RunnerEnvTest, UnsetAndEmptyVariablesReturnFallback) {
  unsetenv("PHILLY_TEST_KNOB");
  EXPECT_EQ(PositiveIntFromEnv("PHILLY_TEST_KNOB", 7), 7);
  EXPECT_EQ(U64FromEnv("PHILLY_TEST_KNOB", 99u), 99u);
  setenv("PHILLY_TEST_KNOB", "", 1);
  EXPECT_EQ(PositiveIntFromEnv("PHILLY_TEST_KNOB", 7), 7);
  EXPECT_EQ(U64FromEnv("PHILLY_TEST_KNOB", 99u), 99u);
  unsetenv("PHILLY_TEST_KNOB");
}

TEST(RunnerEnvTest, ValidValuesParse) {
  setenv("PHILLY_TEST_KNOB", "12", 1);
  EXPECT_EQ(PositiveIntFromEnv("PHILLY_TEST_KNOB", 7), 12);
  EXPECT_EQ(U64FromEnv("PHILLY_TEST_KNOB", 99u), 12u);
  setenv("PHILLY_TEST_KNOB", "18446744073709551615", 1);  // UINT64_MAX
  EXPECT_EQ(U64FromEnv("PHILLY_TEST_KNOB", 99u), UINT64_MAX);
  unsetenv("PHILLY_TEST_KNOB");
}

// atoi-style silent acceptance of garbage is exactly what these knobs used to
// do; now a malformed value must abort with a message naming the variable.
TEST(RunnerEnvDeathTest, GarbageValuesExitWithMessage) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  setenv("PHILLY_TEST_KNOB", "12abc", 1);
  EXPECT_EXIT(PositiveIntFromEnv("PHILLY_TEST_KNOB", 7),
              ::testing::ExitedWithCode(2), "PHILLY_TEST_KNOB='12abc' is invalid");
  EXPECT_EXIT(U64FromEnv("PHILLY_TEST_KNOB", 7u), ::testing::ExitedWithCode(2),
              "PHILLY_TEST_KNOB='12abc' is invalid");
  setenv("PHILLY_TEST_KNOB", "banana", 1);
  EXPECT_EXIT(PositiveIntFromEnv("PHILLY_TEST_KNOB", 7),
              ::testing::ExitedWithCode(2), "expected a positive integer");
  setenv("PHILLY_TEST_KNOB", "0", 1);
  EXPECT_EXIT(PositiveIntFromEnv("PHILLY_TEST_KNOB", 7),
              ::testing::ExitedWithCode(2), "expected a positive integer");
  setenv("PHILLY_TEST_KNOB", "-3", 1);
  EXPECT_EXIT(PositiveIntFromEnv("PHILLY_TEST_KNOB", 7),
              ::testing::ExitedWithCode(2), "expected a positive integer");
  EXPECT_EXIT(U64FromEnv("PHILLY_TEST_KNOB", 7u), ::testing::ExitedWithCode(2),
              "expected an unsigned integer");
  unsetenv("PHILLY_TEST_KNOB");
}

}  // namespace
}  // namespace philly
