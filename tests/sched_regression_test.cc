// Regression tests for three scheduler-accounting bugs, each built as a
// hand-crafted scenario (failure injection disabled) that fails on the
// pre-fix code:
//
//   1. The per-pass feasibility cache was invalidated only when
//      `result_.preemptions` changed, but priority (checkpoint) suspension
//      and migration also free GPUs mid-pass — a stale entry then skipped a
//      job those GPUs could serve.
//   2. `SuspendAttempt` advanced `clean_executed` but never refreshed
//      `record.executed_epochs`, so a suspended job under-reported its
//      epochs until its next clean attempt completed.
//   3. `MigrationPass` checked `max_migrations_per_pass` per *server* but
//      incremented the counter per *job*, so evacuating one server could
//      overshoot the cap.

#include "src/sched/simulation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace philly {
namespace {

JobSpec MakeJob(JobId id, SimTime submit, int gpus, SimDuration planned,
                int epochs) {
  JobSpec spec;
  spec.id = id;
  spec.vc = 0;
  spec.user = static_cast<UserId>(id);
  spec.submit_time = submit;
  spec.num_gpus = gpus;
  spec.planned_duration = planned;
  spec.planned_epochs = epochs;
  return spec;
}

SimulationConfig BaseConfig(int racks, int servers_per_rack, int gpus_per_server,
                            SchedulerConfig sched) {
  SimulationConfig config;
  config.cluster = ClusterConfig{};
  config.cluster.skus.push_back({racks, servers_per_rack, gpus_per_server});
  config.scheduler = std::move(sched);
  config.failure.failure_scale = 0.0;  // deterministic clean scenario
  config.vcs.push_back(
      {"vc0", racks * servers_per_rack * gpus_per_server, 1.0, 1.0, true});
  config.seed = 1;
  return config;
}

const JobRecord& RecordOf(const SimulationResult& result, JobId id) {
  const auto it =
      std::find_if(result.jobs.begin(), result.jobs.end(),
                   [id](const JobRecord& job) { return job.spec.id == id; });
  EXPECT_NE(it, result.jobs.end()) << "job " << id << " missing from result";
  return *it;
}

// Bug 1: a 32-GPU cluster is fully occupied by three long jobs. Three short
// SRTF jobs arrive together and are evaluated in one pass:
//   * P (10 GPUs) checkpoint-suspends the longest victim (8 GPUs freed),
//     still cannot place, and records "demand 10 failed" in the pass cache.
//   * Q (9 GPUs) suspends the next victim (16 GPUs freed) and starts.
//   * Y (10 GPUs) now fits in the remaining 15 free GPUs — but the stale
//     cache entry (written before Q's suspension freed those GPUs) used to
//     skip it to the next backoff pass, costing it 2 minutes of queueing.
TEST(SchedRegressionTest, FeasibilityCacheInvalidatedByPrioritySuspension) {
  SchedulerConfig sched = SchedulerConfig::Optimus();
  SimulationConfig config = BaseConfig(1, 4, 8, std::move(sched));

  std::vector<JobSpec> jobs;
  jobs.push_back(MakeJob(1, 0, 8, Hours(100), 100));      // victim 1, server 0
  jobs.push_back(MakeJob(2, 1, 16, Hours(98), 98));       // victim 2, servers 1-2
  jobs.push_back(MakeJob(3, 2, 8, Hours(50), 50));        // server 3
  jobs.push_back(MakeJob(4, Hours(1), 10, Hours(10), 10));  // P
  jobs.push_back(MakeJob(5, Hours(1), 9, Hours(20), 20));   // Q
  jobs.push_back(MakeJob(6, Hours(1), 10, Hours(30), 30));  // Y

  ClusterSimulation sim(config, std::move(jobs));
  const SimulationResult result = sim.Run();

  // Both suspensions happened in that first contended pass.
  EXPECT_GE(result.priority_preemptions, 2);

  // Q started immediately after its suspension freed 16 GPUs.
  const JobRecord& q = RecordOf(result, 5);
  ASSERT_FALSE(q.waits.empty());
  EXPECT_EQ(q.waits.front().wait, 0);

  // Y must start in the same pass: 15 GPUs are free when it is evaluated.
  // Pre-fix, the stale cache entry deferred it to the next backoff pass
  // (a 120-second wait).
  const JobRecord& y = RecordOf(result, 6);
  ASSERT_FALSE(y.waits.empty());
  EXPECT_EQ(y.waits.front().wait, 0);
}

// Bug 2: a Gandiva time-slice suspends J1 after 3 hours (= 3 of its 10
// epochs). The occupancy snapshot taken at hour 4 — while J1 sits requeued —
// must already see those 3 epochs in `executed_epochs_total`; pre-fix the
// suspended job still reported 0.
TEST(SchedRegressionTest, SuspendedJobReportsExecutedEpochs) {
  SchedulerConfig sched = SchedulerConfig::Gandiva();
  sched.time_slice_quantum = Hours(3);
  SimulationConfig config = BaseConfig(1, 1, 8, std::move(sched));
  config.snapshot_period = Hours(4);

  std::vector<JobSpec> jobs;
  jobs.push_back(MakeJob(1, 0, 8, Hours(10), 10));  // J1: 1 epoch per hour
  jobs.push_back(MakeJob(2, 1, 8, Hours(2), 2));    // J2: waiter that slices in

  ClusterSimulation sim(config, std::move(jobs));
  const SimulationResult result = sim.Run();

  // At hour 4 J1 is suspended (J2 runs until hour 5) with 3 clean hours done.
  ASSERT_FALSE(result.occupancy_snapshots.empty());
  const auto& snap = result.occupancy_snapshots.front();
  EXPECT_EQ(snap.time, Hours(4));
  EXPECT_EQ(snap.executed_epochs_total, 3);

  // Sanity: both jobs still finish with full epoch counts.
  EXPECT_EQ(RecordOf(result, 1).status, JobStatus::kPassed);
  EXPECT_EQ(RecordOf(result, 1).executed_epochs, 10);
  EXPECT_EQ(RecordOf(result, 2).executed_epochs, 2);
}

// Bug 3: one half-used server hosts two migratable 2-GPU jobs and
// `max_migrations_per_pass` is 1. The defragmentation pass must migrate
// exactly one job; pre-fix the cap was only checked per server, so the whole
// server was evacuated (2 migrations).
TEST(SchedRegressionTest, MigrationPassHonorsPerJobCap) {
  SchedulerConfig sched = SchedulerConfig::Philly();
  sched.enable_migration = true;
  sched.max_migrations_per_pass = 1;
  sched.migration_period = Hours(2);
  SimulationConfig config = BaseConfig(1, 1, 8, std::move(sched));

  std::vector<JobSpec> jobs;
  jobs.push_back(MakeJob(1, 0, 2, Hours(3), 3));
  jobs.push_back(MakeJob(2, 1, 2, Hours(3), 3));

  ClusterSimulation sim(config, std::move(jobs));
  const SimulationResult result = sim.Run();

  EXPECT_EQ(result.migrations, 1);
  EXPECT_EQ(RecordOf(result, 1).status, JobStatus::kPassed);
  EXPECT_EQ(RecordOf(result, 2).status, JobStatus::kPassed);
}

}  // namespace
}  // namespace philly
