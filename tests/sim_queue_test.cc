// Regression and differential tests for the event-queue engines.
//
// The calendar engine (SimEngine::kCalendar) must match the legacy heap
// engine event-for-event while fixing its one real defect: cancelled entries
// accumulating in the heap without bound. These tests pin down
//   * bounded physical size under cancel/reschedule churn (the bug fix),
//   * FIFO ordering among same-tick events,
//   * RunUntil / time-advance-observer interplay,
//   * randomized schedule/cancel differential: legacy vs calendar traces,
//   * cross-thread determinism of the fired-event stream (tsan label).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/sim/simulator.h"

namespace philly {
namespace {

// Reschedule-heavy workload shaped like the scheduler's timeout machinery:
// one long-lived "end event" per job that gets cancelled and rescheduled on
// every preemption. Live count stays tiny; total churn is large.
constexpr int kChurnRounds = 50000;

size_t ChurnPhysicalPeak(SimEngine engine) {
  Simulator sim(engine);
  size_t peak = 0;
  EventId pending;
  for (int i = 0; i < kChurnRounds; ++i) {
    if (pending != EventId{}) {
      sim.Cancel(pending);
    }
    pending = sim.ScheduleAt(static_cast<SimTime>(1000000 + i), [] {});
    peak = std::max(peak, sim.PhysicalCount());
  }
  EXPECT_EQ(sim.PendingCount(), 1u);
  return peak;
}

// The fix: with at most one live event, the calendar engine's tombstone
// compaction keeps physical storage O(live + compaction floor) no matter how
// many cancels have happened.
TEST(SimQueueBoundedGrowthTest, CalendarStaysBoundedUnderCancelChurn) {
  const size_t peak = ChurnPhysicalPeak(SimEngine::kCalendar);
  // Compaction triggers once tombstones exceed max(64, live); with live == 1
  // the physical size can never reach 256 entries, let alone kChurnRounds.
  EXPECT_LE(peak, 256u);
}

// The bug being fixed, kept as an executable record: the legacy heap retains
// every cancelled entry until it would surface, so the same churn grows the
// queue to the full round count. (This is the pre-fix failure mode — the
// bounded assertion above fails on kLegacyHeap.)
TEST(SimQueueBoundedGrowthTest, LegacyHeapGrowsWithoutBound) {
  const size_t peak = ChurnPhysicalPeak(SimEngine::kLegacyHeap);
  EXPECT_GE(peak, static_cast<size_t>(kChurnRounds));
}

class SimQueueEngineTest : public ::testing::TestWithParam<SimEngine> {};

TEST_P(SimQueueEngineTest, SameTickEventsFireInScheduleOrder) {
  Simulator sim(GetParam());
  std::vector<int> order;
  // Interleave two ticks so bucket-internal ordering (not just arrival
  // order into an empty queue) is exercised.
  for (int i = 0; i < 50; ++i) {
    sim.ScheduleAt(70, [&order, i] { order.push_back(100 + i); });
    sim.ScheduleAt(10, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
    EXPECT_EQ(order[static_cast<size_t>(50 + i)], 100 + i);
  }
}

TEST_P(SimQueueEngineTest, ObserverSeesEveryAdvanceBeforeTheEvent) {
  Simulator sim(GetParam());
  std::vector<std::pair<SimTime, int>> log;  // (time, 0=observer / 1=event)
  sim.SetTimeAdvanceObserver([&](SimTime t) { log.push_back({t, 0}); });
  sim.ScheduleAt(10, [&] { log.push_back({10, 1}); });
  sim.ScheduleAt(10, [&] { log.push_back({10, 1}); });  // same tick: one advance
  sim.ScheduleAt(25, [&] { log.push_back({25, 1}); });
  sim.RunUntil(40);  // final advance to the deadline also notifies
  EXPECT_EQ(sim.Now(), 40);
  const std::vector<std::pair<SimTime, int>> want = {
      {10, 0}, {10, 1}, {10, 1}, {25, 0}, {25, 1}, {40, 0}};
  EXPECT_EQ(log, want);
}

TEST_P(SimQueueEngineTest, RunUntilAtNowDoesNotNotifyObserver) {
  Simulator sim(GetParam());
  int advances = 0;
  sim.SetTimeAdvanceObserver([&](SimTime) { ++advances; });
  sim.ScheduleAt(5, [] {});
  sim.RunUntil(5);
  EXPECT_EQ(advances, 1);
  sim.RunUntil(5);  // clock already there: no advance, no callback
  EXPECT_EQ(advances, 1);
  EXPECT_EQ(sim.Now(), 5);
}

INSTANTIATE_TEST_SUITE_P(Engines, SimQueueEngineTest,
                         ::testing::Values(SimEngine::kCalendar,
                                           SimEngine::kLegacyHeap),
                         [](const auto& info) {
                           return info.param == SimEngine::kCalendar
                                      ? "Calendar"
                                      : "LegacyHeap";
                         });

// One randomized driver both engines replay identically: schedules (near and
// far beyond the calendar ring's window), cancels, reschedules from inside
// callbacks, and interleaved RunUntil calls. Returns the serialized trace of
// everything that fired.
std::string TraceOf(SimEngine engine, uint64_t seed) {
  Simulator sim(engine);
  Rng rng(seed);
  std::string trace;
  std::vector<EventId> live;
  int next_tag = 0;

  auto fire = [&sim, &trace](int tag) {
    trace += std::to_string(sim.Now());
    trace += ':';
    trace += std::to_string(tag);
    trace += '\n';
  };

  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 100; ++i) {
      // Mix minute-grid-local times with far-future ones so events land in
      // ring buckets AND the overflow heap (> 4096 minutes out).
      const SimDuration d = rng.Bernoulli(0.2)
                                ? static_cast<SimDuration>(rng.Below(40'000'000))
                                : static_cast<SimDuration>(rng.Below(3'000));
      const int tag = next_tag++;
      if (rng.Bernoulli(0.25)) {
        // Schedule a chain: the event reschedules a child when it fires.
        const int child = next_tag++;
        live.push_back(sim.ScheduleAfter(d, [&sim, &fire, tag, child] {
          fire(tag);
          sim.ScheduleAfter(17, [&fire, child] { fire(child); });
        }));
      } else {
        live.push_back(sim.ScheduleAfter(d, [&fire, tag] { fire(tag); }));
      }
      if (!live.empty() && rng.Bernoulli(0.35)) {
        const size_t pick = rng.Below(live.size());
        sim.Cancel(live[pick]);  // may be stale (already fired): both engines
        live.erase(live.begin() + static_cast<long>(pick));
      }
    }
    sim.RunUntil(sim.Now() + static_cast<SimDuration>(rng.Below(200'000)));
  }
  sim.Run();
  return trace;
}

class SimQueueDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimQueueDifferentialTest, CalendarMatchesLegacyTraceExactly) {
  const std::string legacy = TraceOf(SimEngine::kLegacyHeap, GetParam());
  const std::string calendar = TraceOf(SimEngine::kCalendar, GetParam());
  EXPECT_FALSE(legacy.empty());
  EXPECT_EQ(calendar, legacy);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimQueueDifferentialTest,
                         ::testing::Values(1, 42, 777, 31337));

// Determinism across threads: the fired-event stream must not depend on which
// thread runs the simulator (no hidden global state in either engine). Runs
// under the tsan label so the ThreadSanitizer job checks the same property.
TEST(SimQueueThreadedTest, TracesAreByteIdenticalAcrossThreads) {
  constexpr int kThreads = 4;
  std::vector<std::string> traces(kThreads);
  {
    std::vector<std::thread> workers;
    for (int i = 0; i < kThreads; ++i) {
      workers.emplace_back([&traces, i] {
        traces[static_cast<size_t>(i)] =
            TraceOf(i % 2 == 0 ? SimEngine::kCalendar : SimEngine::kLegacyHeap,
                    /*seed=*/4242);
      });
    }
    for (auto& w : workers) {
      w.join();
    }
  }
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(traces[static_cast<size_t>(i)], traces[0]) << "thread " << i;
  }
  EXPECT_FALSE(traces[0].empty());
}

}  // namespace
}  // namespace philly
