#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"

namespace philly {
namespace {

TEST(SimulatorTest, ProcessesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(30, [&] { order.push_back(3); });
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST(SimulatorTest, TiesAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorTest, ScheduleAfterUsesNow) {
  Simulator sim;
  SimTime fired_at = -1;
  sim.ScheduleAt(100, [&] {
    sim.ScheduleAfter(50, [&] { fired_at = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(fired_at, 150);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.ScheduleAt(10, [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.ProcessedCount(), 0u);
}

TEST(SimulatorTest, DoubleCancelReturnsFalse) {
  Simulator sim;
  const EventId id = sim.ScheduleAt(10, [] {});
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));
}

TEST(SimulatorTest, CancelAfterFireReturnsFalse) {
  Simulator sim;
  const EventId id = sim.ScheduleAt(10, [] {});
  sim.Run();
  EXPECT_FALSE(sim.Cancel(id));
}

TEST(SimulatorTest, CancelUnknownIdReturnsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.Cancel(EventId{12345}));
  EXPECT_FALSE(sim.Cancel(EventId{}));
}

TEST(SimulatorTest, RunUntilAdvancesClockToDeadline) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(10, [&] { ++fired; });
  sim.ScheduleAt(100, [&] { ++fired; });
  sim.RunUntil(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 50);
  sim.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), 100);
}

TEST(SimulatorTest, RunUntilInclusiveOfDeadline) {
  Simulator sim;
  bool fired = false;
  sim.ScheduleAt(50, [&] { fired = true; });
  sim.RunUntil(50);
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, StepProcessesExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(1, [&] { ++fired; });
  sim.ScheduleAt(2, [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventsScheduledDuringRunAreProcessed) {
  Simulator sim;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 100) {
      sim.ScheduleAfter(1, step);
    }
  };
  sim.ScheduleAt(0, step);
  sim.Run();
  EXPECT_EQ(chain, 100);
  EXPECT_EQ(sim.Now(), 99);
  EXPECT_EQ(sim.ProcessedCount(), 100u);
}

TEST(SimulatorTest, PendingCountTracksQueue) {
  Simulator sim;
  const EventId a = sim.ScheduleAt(10, [] {});
  sim.ScheduleAt(20, [] {});
  EXPECT_EQ(sim.PendingCount(), 2u);
  sim.Cancel(a);
  EXPECT_EQ(sim.PendingCount(), 1u);
  sim.Run();
  EXPECT_EQ(sim.PendingCount(), 0u);
}

// Property: a random mix of schedules and cancels always fires events in
// nondecreasing time order and never fires cancelled events.
class SimulatorFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimulatorFuzz, OrderAndCancellationInvariants) {
  Simulator sim;
  Rng rng(GetParam());
  std::vector<SimTime> fired;
  std::vector<EventId> live;
  std::vector<EventId> cancelled;

  for (int i = 0; i < 500; ++i) {
    const SimTime t = static_cast<SimTime>(rng.Below(10000));
    live.push_back(sim.ScheduleAt(t, [&fired, &sim] { fired.push_back(sim.Now()); }));
    if (!live.empty() && rng.Bernoulli(0.3)) {
      const size_t pick = rng.Below(live.size());
      if (sim.Cancel(live[pick])) {
        cancelled.push_back(live[pick]);
      }
      live.erase(live.begin() + static_cast<long>(pick));
    }
  }
  sim.Run();
  EXPECT_EQ(fired.size(), live.size());
  for (size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1], fired[i]);
  }
  for (EventId id : cancelled) {
    EXPECT_FALSE(sim.Cancel(id));  // stays cancelled
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorFuzz,
                         ::testing::Values(1, 7, 42, 99, 1234, 5678));

}  // namespace
}  // namespace philly
