#include "src/sched/simulation.h"

#include <gtest/gtest.h>

#include <map>

namespace philly {
namespace {

// Small, fast experiment used by most tests: paper VC structure, 2 days of
// arrivals, warm-start cohort large enough to exercise contention paths.
struct TestSetup {
  WorkloadConfig workload;
  SimulationConfig simulation;
  std::vector<JobSpec> jobs;

  explicit TestSetup(int days = 2, uint64_t seed = 11,
                     SchedulerConfig sched = SchedulerConfig::Philly()) {
    workload = WorkloadConfig::Scaled(days, seed);
    workload.prepopulate_busy_gpus = 2100;
    simulation.vcs = workload.vcs;
    simulation.scheduler = std::move(sched);
    simulation.seed = seed;
    jobs = WorkloadGenerator(workload).Generate();
  }

  SimulationResult Run() {
    ClusterSimulation sim(simulation, jobs);
    return sim.Run();
  }
};

TEST(SimulationTest, AllJobsReachTerminalState) {
  TestSetup setup;
  const auto result = setup.Run();
  EXPECT_EQ(result.jobs.size(), setup.jobs.size());
  for (const auto& job : result.jobs) {
    EXPECT_GE(job.finish_time, job.spec.submit_time);
    EXPECT_TRUE(job.status == JobStatus::kPassed || job.status == JobStatus::kKilled ||
                job.status == JobStatus::kUnsuccessful);
  }
}

TEST(SimulationTest, AttemptsAreWellFormed) {
  TestSetup setup;
  const auto result = setup.Run();
  for (const auto& job : result.jobs) {
    SimTime prev_end = job.spec.submit_time;
    for (const auto& attempt : job.attempts) {
      EXPECT_GE(attempt.start, prev_end);
      EXPECT_GE(attempt.end, attempt.start);
      EXPECT_EQ(attempt.placement.NumGpus(), job.spec.num_gpus);
      prev_end = attempt.end;
    }
  }
}

TEST(SimulationTest, GpuSecondsMatchAttempts) {
  TestSetup setup;
  const auto result = setup.Run();
  for (const auto& job : result.jobs) {
    double expected = 0.0;
    for (const auto& attempt : job.attempts) {
      expected += attempt.GpuTime();
    }
    EXPECT_DOUBLE_EQ(job.gpu_seconds, expected);
  }
}

TEST(SimulationTest, UtilSegmentsCoverAttemptTime) {
  TestSetup setup;
  const auto result = setup.Run();
  for (const auto& job : result.jobs) {
    SimDuration attempts_total = 0;
    for (const auto& attempt : job.attempts) {
      attempts_total += attempt.Duration();
    }
    SimDuration segments_total = 0;
    for (const auto& segment : job.util_segments) {
      EXPECT_GE(segment.expected_util, 0.0);
      EXPECT_LE(segment.expected_util, 1.0);
      EXPECT_GT(segment.duration, 0);
      segments_total += segment.duration;
    }
    EXPECT_EQ(segments_total, attempts_total);
  }
}

TEST(SimulationTest, WaitsAccountedPerAttempt) {
  TestSetup setup;
  const auto result = setup.Run();
  for (const auto& job : result.jobs) {
    if (job.spec.num_gpus > 1600) {
      continue;  // rejected outright
    }
    EXPECT_EQ(job.waits.size(), job.attempts.size());
    for (const auto& wait : job.waits) {
      EXPECT_GE(wait.wait, 0);
      EXPECT_LE(wait.fair_share_time + wait.fragmentation_time, wait.wait);
    }
  }
}

TEST(SimulationTest, FailedAttemptsCarryLogs) {
  TestSetup setup;
  const auto result = setup.Run();
  int failed_attempts = 0;
  for (const auto& job : result.jobs) {
    for (const auto& attempt : job.attempts) {
      if (attempt.failed) {
        ++failed_attempts;
        EXPECT_FALSE(attempt.log_tail.empty());
      } else {
        EXPECT_TRUE(attempt.log_tail.empty());
      }
    }
  }
  EXPECT_GT(failed_attempts, 100);
}

TEST(SimulationTest, RetriesBounded) {
  TestSetup setup;
  const auto result = setup.Run();
  const int cap = setup.simulation.scheduler.max_retries;
  for (const auto& job : result.jobs) {
    int failures = 0;
    for (const auto& attempt : job.attempts) {
      failures += attempt.failed && !attempt.preempted;
    }
    EXPECT_LE(failures, cap + 1);
  }
}

TEST(SimulationTest, DeterministicAcrossRuns) {
  TestSetup a;
  TestSetup b;
  const auto ra = a.Run();
  const auto rb = b.Run();
  ASSERT_EQ(ra.jobs.size(), rb.jobs.size());
  for (size_t i = 0; i < ra.jobs.size(); ++i) {
    EXPECT_EQ(ra.jobs[i].status, rb.jobs[i].status);
    EXPECT_DOUBLE_EQ(ra.jobs[i].gpu_seconds, rb.jobs[i].gpu_seconds);
    EXPECT_EQ(ra.jobs[i].finish_time, rb.jobs[i].finish_time);
  }
  EXPECT_EQ(ra.scheduling_decisions, rb.scheduling_decisions);
  EXPECT_EQ(ra.preemptions, rb.preemptions);
}

TEST(SimulationTest, StatusMixReasonable) {
  TestSetup setup(3);
  const auto result = setup.Run();
  std::map<JobStatus, int> counts;
  for (const auto& job : result.jobs) {
    ++counts[job.status];
  }
  const double n = static_cast<double>(result.jobs.size());
  EXPECT_GT(counts[JobStatus::kPassed] / n, 0.55);
  EXPECT_GT(counts[JobStatus::kKilled] / n, 0.04);
  EXPECT_GT(counts[JobStatus::kUnsuccessful] / n, 0.08);
}

TEST(SimulationTest, FifoDisallowsOutOfOrder) {
  TestSetup setup(2, 11, SchedulerConfig::Fifo());
  const auto result = setup.Run();
  EXPECT_EQ(result.out_of_order_decisions, 0);
  for (const auto& job : result.jobs) {
    EXPECT_FALSE(job.started_out_of_order);
  }
}

TEST(SimulationTest, PhillyAllowsOutOfOrder) {
  // Long enough to include deadline-push bursts, which create the queueing
  // that out-of-order scheduling needs.
  TestSetup setup(10);
  const auto result = setup.Run();
  EXPECT_GT(result.out_of_order_decisions, 0);
  EXPECT_LE(result.out_of_order_benign, result.out_of_order_decisions);
}

TEST(SimulationTest, PreemptionDisabledMeansNone) {
  SchedulerConfig sched = SchedulerConfig::Philly();
  sched.enable_preemption = false;
  TestSetup setup(2, 11, sched);
  const auto result = setup.Run();
  EXPECT_EQ(result.preemptions, 0);
  for (const auto& job : result.jobs) {
    for (const auto& attempt : job.attempts) {
      EXPECT_FALSE(attempt.preempted);
    }
  }
}

TEST(SimulationTest, PreemptedAttemptsMarked) {
  TestSetup setup(4);
  const auto result = setup.Run();
  int64_t preempted_attempts = 0;
  for (const auto& job : result.jobs) {
    for (const auto& attempt : job.attempts) {
      if (attempt.preempted) {
        ++preempted_attempts;
        EXPECT_TRUE(attempt.failed);
        EXPECT_EQ(attempt.true_reason, FailureReason::kJobPreempted);
        EXPECT_FALSE(attempt.log_tail.empty());
      }
    }
  }
  EXPECT_EQ(preempted_attempts, result.preemptions);
}

TEST(SimulationTest, GandivaTimeSlicingSuspendsJobs) {
  SchedulerConfig sched = SchedulerConfig::Gandiva();
  sched.time_slice_quantum = Minutes(30);
  TestSetup setup(2, 11, sched);
  const auto result = setup.Run();
  // Suspended clean attempts: non-failed attempts that did not end the job.
  int suspended = 0;
  for (const auto& job : result.jobs) {
    for (size_t i = 0; i + 1 < job.attempts.size(); ++i) {
      if (!job.attempts[i].failed) {
        ++suspended;
      }
    }
  }
  EXPECT_GT(suspended, 0);
}

TEST(SimulationTest, AdaptiveRetryNeverUsesMoreGpuTime) {
  SchedulerConfig fixed = SchedulerConfig::Philly();
  SchedulerConfig adaptive = SchedulerConfig::Philly();
  adaptive.adaptive_retry = true;
  TestSetup fixed_setup(2, 11, fixed);
  TestSetup adaptive_setup(2, 11, adaptive);
  const auto rf = fixed_setup.Run();
  const auto ra = adaptive_setup.Run();
  double fixed_failed_time = 0.0;
  double adaptive_failed_time = 0.0;
  for (const auto& job : rf.jobs) {
    for (const auto& attempt : job.attempts) {
      if (attempt.failed) {
        fixed_failed_time += attempt.GpuTime();
      }
    }
  }
  for (const auto& job : ra.jobs) {
    for (const auto& attempt : job.attempts) {
      if (attempt.failed) {
        adaptive_failed_time += attempt.GpuTime();
      }
    }
  }
  EXPECT_LT(adaptive_failed_time, fixed_failed_time);
}

TEST(SimulationTest, StrictLocalityNeverSpreadsSubServerJobs) {
  SchedulerConfig sched = SchedulerConfig::Philly();
  sched.max_relax_level = 0;
  TestSetup setup(2, 11, sched);
  const auto result = setup.Run();
  for (const auto& job : result.jobs) {
    if (job.spec.num_gpus <= 8) {
      for (const auto& attempt : job.attempts) {
        EXPECT_EQ(attempt.placement.NumServers(), 1);
      }
    }
  }
}

TEST(SimulationTest, SnapshotsCoverArrivalWindow) {
  TestSetup setup(2);
  const auto result = setup.Run();
  ASSERT_FALSE(result.occupancy_snapshots.empty());
  for (const auto& snap : result.occupancy_snapshots) {
    EXPECT_GE(snap.occupancy, 0.0);
    EXPECT_LE(snap.occupancy, 1.0);
    EXPECT_GE(snap.empty_server_fraction, 0.0);
    EXPECT_LE(snap.empty_server_fraction, 1.0);
  }
  EXPECT_GE(result.occupancy_snapshots.back().time, Days(1));
}

TEST(SimulationTest, OversizedJobRejected) {
  TestSetup setup(1, 3);
  JobSpec monster;
  monster.id = 999999;
  monster.vc = 0;
  monster.num_gpus = 100000;
  monster.submit_time = Hours(1);
  setup.jobs.push_back(monster);
  std::sort(setup.jobs.begin(), setup.jobs.end(),
            [](const JobSpec& a, const JobSpec& b) {
              return a.submit_time < b.submit_time;
            });
  const auto result = setup.Run();
  bool found = false;
  for (const auto& job : result.jobs) {
    if (job.spec.id == 999999) {
      found = true;
      EXPECT_EQ(job.status, JobStatus::kUnsuccessful);
      EXPECT_TRUE(job.attempts.empty());
    }
  }
  EXPECT_TRUE(found);
}

// Scheduler-policy sweep: every preset must complete the workload and
// produce internally consistent records.
class SchedulerPresetSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(SchedulerPresetSweep, CompletesWorkload) {
  SchedulerConfig sched;
  const std::string name = GetParam();
  if (name == "philly") {
    sched = SchedulerConfig::Philly();
  } else if (name == "fifo") {
    sched = SchedulerConfig::Fifo();
  } else if (name == "optimus") {
    sched = SchedulerConfig::Optimus();
  } else if (name == "tiresias") {
    sched = SchedulerConfig::Tiresias();
  } else {
    sched = SchedulerConfig::Gandiva();
  }
  TestSetup setup(1, 29, sched);
  const auto result = setup.Run();
  EXPECT_EQ(result.jobs.size(), setup.jobs.size());
  int passed = 0;
  for (const auto& job : result.jobs) {
    passed += job.status == JobStatus::kPassed;
  }
  EXPECT_GT(passed, static_cast<int>(result.jobs.size() / 2));
}

INSTANTIATE_TEST_SUITE_P(Presets, SchedulerPresetSweep,
                         ::testing::Values("philly", "fifo", "optimus", "tiresias",
                                           "gandiva"));

TEST(SchedulerConfigTest, PresetsMatchTableOne) {
  const auto philly = SchedulerConfig::Philly();
  EXPECT_EQ(philly.name, "philly");
  EXPECT_EQ(philly.ordering, QueueOrdering::kFifoArrival);
  EXPECT_TRUE(philly.allow_out_of_order);
  EXPECT_FALSE(philly.time_slicing);
  EXPECT_FALSE(philly.priority_preemption);

  const auto fifo = SchedulerConfig::Fifo();
  EXPECT_FALSE(fifo.allow_out_of_order);

  const auto optimus = SchedulerConfig::Optimus();
  EXPECT_EQ(optimus.ordering, QueueOrdering::kShortestRemainingFirst);
  EXPECT_TRUE(optimus.priority_preemption);

  const auto tiresias = SchedulerConfig::Tiresias();
  EXPECT_EQ(tiresias.ordering, QueueOrdering::kLeastAttainedServiceFirst);
  EXPECT_TRUE(tiresias.priority_preemption);

  const auto gandiva = SchedulerConfig::Gandiva();
  EXPECT_TRUE(gandiva.time_slicing);
}

TEST(SimulationTest, QuotasOversubscribedButVc4Tight) {
  // The workload config encodes the paper's VC structure: generous quotas for
  // the large production groups, a chronically over-subscribed VC5 analogue.
  const auto workload = WorkloadConfig::PaperScale();
  const auto cluster = ClusterConfig::PaperScale();
  EXPECT_GT(workload.TotalQuota(), cluster.TotalGpus());
  // vc4's demand share of realized GPU-time far exceeds its quota share.
  const double vc4_rate_share =
      workload.vcs[4].arrival_rate_per_hour / workload.TotalArrivalRate();
  const double vc4_quota_share =
      static_cast<double>(workload.vcs[4].quota_gpus) / workload.TotalQuota();
  EXPECT_GT(vc4_rate_share, 1.5 * vc4_quota_share);
}

}  // namespace
}  // namespace philly
