// Tests for the queueing-delay attribution engine (src/obs/span.h +
// src/core/span_analysis.h).
//
//   * NDJSON codec round-trip, strict rejection of malformed lines, and the
//     Chrome-trace export shape.
//   * The blame-conservation property: for randomized configurations — faults
//     on/off, checkpoint I/O on/off under both policies, different seeds —
//     run through the ExperimentPool, every completed job's attributed blame
//     intervals sum exactly to its measured queueing delay, and Table 2
//     rebuilt from the spans alone equals the native analysis.
//   * Determinism: the span stream is byte-identical across pool thread
//     counts, and attaching the span sink does not perturb the run (the
//     scheduler event stream stays byte-identical).
//   * Fleet: per-cluster span streams conserve blame under dynamic routing,
//     spilled jobs carry router_queue blame, and under the pinned router each
//     cluster's stream is byte-identical to its standalone run.
//   * The telemetry join: with the span sink attached, samples carry the
//     per-VC blame rollup and it survives the NDJSON round-trip.
//
// The pool-based tests are labelled tsan in tests/CMakeLists.txt: the
// tracer's per-run state must never be shared across worker threads.

#include "src/obs/span.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/core/analysis.h"
#include "src/core/experiment.h"
#include "src/core/runner.h"
#include "src/core/span_analysis.h"
#include "src/fault/fault_process.h"
#include "src/fleet/fleet.h"
#include "src/obs/event_log.h"
#include "src/obs/timeseries.h"

namespace philly {
namespace {

// Small fixed workload in the golden test's shape: one day of arrivals at
// reduced rates against a quarter-size cluster with a warm-start cohort, so
// runs queue enough to exercise fair-share, fragmentation, and locality
// blame while staying fast enough to repeat across configurations.
ExperimentConfig SmallConfig(uint64_t seed) {
  ExperimentConfig config = ExperimentConfig::BenchScale(/*days=*/1, seed);
  for (VcConfig& vc : config.workload.vcs) {
    vc.arrival_rate_per_hour *= 0.3;
  }
  config.simulation.cluster.skus.clear();
  config.simulation.cluster.skus.push_back(
      {/*racks=*/4, /*servers_per_rack=*/16, /*gpus_per_server=*/8});
  config.simulation.cluster.skus.push_back(
      {/*racks=*/1, /*servers_per_rack=*/24, /*gpus_per_server=*/2});
  config.workload.prepopulate_busy_gpus = 536;
  return config;
}

// The randomized-configuration matrix: every combination the attribution
// engine claims to cover — clean runs, machine faults (fault_recovery blame),
// and the checkpoint I/O model under both policies (ckpt_stall spans,
// interrupted writes) — across distinct seeds.
std::vector<ExperimentConfig> PropertyConfigs() {
  std::vector<ExperimentConfig> configs;
  configs.push_back(SmallConfig(7));
  {
    ExperimentConfig config = SmallConfig(11);
    config.simulation.fault = FaultProcessConfig::Calibrated();
    config.simulation.fault.server_crash_mtbf_hours = 24.0 * 8;
    config.simulation.fault.gpu_ecc_mtbf_hours = 24.0 * 12;
    config.simulation.fault.rack_outage_mtbf_hours = 24.0 * 20;
    configs.push_back(std::move(config));
  }
  {
    ExperimentConfig config = SmallConfig(13);
    config.simulation.fault = FaultProcessConfig::Calibrated();
    config.simulation.fault.server_crash_mtbf_hours = 24.0 * 8;
    config.simulation.scheduler.checkpoint_period = Minutes(30);
    config.simulation.scheduler.checkpoint_policy =
        CheckpointPolicy::kCooperativeStagger;
    config.simulation.ckpt_io.rack_bandwidth_gbps = 0.5;
    config.simulation.ckpt_io.size_gb_per_gpu = 4.0;
    configs.push_back(std::move(config));
  }
  {
    ExperimentConfig config = SmallConfig(17);
    config.simulation.scheduler.checkpoint_period = Minutes(45);
    config.simulation.scheduler.checkpoint_policy =
        CheckpointPolicy::kDalyOptimal;
    config.simulation.ckpt_io.rack_bandwidth_gbps = 1.0;
    configs.push_back(std::move(config));
  }
  return configs;
}

// Attaches one tracer per config (stable addresses: the tracers outlive the
// pool run) and executes the batch.
std::vector<ExperimentRun> RunWithSpans(
    std::vector<ExperimentConfig> configs,
    std::vector<std::unique_ptr<SpanTracer>>* tracers, int threads) {
  tracers->clear();
  for (ExperimentConfig& config : configs) {
    tracers->push_back(std::make_unique<SpanTracer>());
    config.simulation.obs.spans = tracers->back().get();
  }
  return ExperimentPool(threads).RunMany(std::move(configs));
}

std::string SerializedSpans(const SpanTracer& tracer) {
  std::ostringstream out;
  tracer.log().WriteNdjson(out);
  return out.str();
}

TEST(SpanCodecTest, NdjsonRoundTripsEveryKindAndCode) {
  SpanLog log;
  SpanRecord queued;
  queued.start = 120;
  queued.dur = 360;
  queued.kind = SpanKind::kQueued;
  queued.job = 42;
  queued.vc = 3;
  queued.user = 17;
  queued.gpus = 8;
  queued.wait_index = 1;
  log.Append() = queued;
  for (int c = 0; c < kNumBlameCodes; ++c) {
    SpanRecord blame;
    blame.start = 120 + 50 * c;
    blame.dur = 50;
    blame.kind = SpanKind::kBlame;
    blame.code = static_cast<BlameCode>(c);
    blame.job = 42;
    blame.vc = 3;
    blame.user = 17;
    blame.gpus = 8;
    blame.wait_index = 1;
    log.Append() = blame;
  }
  SpanRecord running;
  running.start = 480;
  running.dur = 3600;
  running.kind = SpanKind::kRunning;
  running.job = 42;
  running.vc = 3;
  running.user = 17;
  running.gpus = 8;
  running.attempt = 2;
  running.detail = "preempt";
  log.Append() = running;
  SpanRecord ckpt;
  ckpt.start = 1000;
  ckpt.dur = 30;
  ckpt.kind = SpanKind::kCkpt;
  ckpt.code = BlameCode::kCkptStall;
  ckpt.job = 42;
  ckpt.vc = 3;
  ckpt.user = 17;
  ckpt.gpus = 8;
  ckpt.detail = "write";
  log.Append() = ckpt;

  std::ostringstream first;
  log.WriteNdjson(first);
  std::istringstream in(first.str());
  std::string error;
  const std::vector<SpanRecord> parsed = SpanLog::ReadNdjson(in, &error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_EQ(parsed.size(), log.spans().size());

  SpanLog reparsed;
  for (const SpanRecord& span : parsed) {
    reparsed.Append() = span;
  }
  std::ostringstream second;
  reparsed.WriteNdjson(second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(SpanCodecTest, MalformedLinesAreRejected) {
  const char* bad[] = {
      "not json",
      "{\"t\":1,\"sp\":\"nonsense\",\"dur\":2}",
      "{\"t\":1,\"sp\":\"blame\",\"dur\":2,\"code\":\"bogus_code\"}",
      "{\"sp\":\"queued\",\"dur\":2}",
  };
  for (const char* line : bad) {
    std::istringstream in(line);
    std::string error;
    SpanLog::ReadNdjson(in, &error);
    EXPECT_FALSE(error.empty()) << "accepted malformed line: " << line;
  }
}

TEST(SpanCodecTest, ChromeTraceExportEmitsCompleteSlices) {
  SpanLog log;
  SpanRecord running;
  running.start = 60;
  running.dur = 120;
  running.kind = SpanKind::kRunning;
  running.job = 5;
  running.vc = 1;
  running.gpus = 4;
  log.Append() = running;
  std::ostringstream out;
  WriteSpanChromeTrace(out, log.spans());
  const std::string trace = out.str();
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
}

// The tentpole identity, property-tested: across clean, faulty, and
// checkpoint-heavy runs, blame conservation holds for every job and the
// span-rebuilt Table 2 equals the native analysis exactly. The same batch is
// then re-run on a single-threaded pool: every span stream must come back
// byte-identical, so attribution is independent of PHILLY_BENCH_THREADS.
TEST(SpanPropertyTest, BlameConservationAndThreadIndependence) {
  std::vector<std::unique_ptr<SpanTracer>> tracers;
  const std::vector<ExperimentRun> runs =
      RunWithSpans(PropertyConfigs(), &tracers, /*threads=*/4);
  ASSERT_EQ(runs.size(), tracers.size());

  for (size_t i = 0; i < runs.size(); ++i) {
    const std::vector<SpanRecord>& spans = tracers[i]->log().spans();
    ASSERT_FALSE(spans.empty()) << "config " << i << " produced no spans";
    std::string error;
    EXPECT_TRUE(VerifyBlameConservation(spans, runs[i].result.jobs, &error))
        << "config " << i << ": " << error;
    const DelayCauseResult native =
        AnalyzeDelayCauses(runs[i].result.jobs, nullptr);
    const DelayCauseResult from_spans = DelayCausesFromSpans(spans);
    EXPECT_TRUE(CrossCheckDelayCauses(native, from_spans, &error))
        << "config " << i << ": " << error;
  }

  std::vector<std::unique_ptr<SpanTracer>> serial_tracers;
  RunWithSpans(PropertyConfigs(), &serial_tracers, /*threads=*/1);
  ASSERT_EQ(serial_tracers.size(), tracers.size());
  for (size_t i = 0; i < tracers.size(); ++i) {
    EXPECT_EQ(SerializedSpans(*tracers[i]), SerializedSpans(*serial_tracers[i]))
        << "span stream for config " << i << " depends on the thread count";
  }
}

// PR 3 ground rule, extended to the span sink: attaching it must not perturb
// the run. The scheduler event stream — which pins every decision the
// simulation makes — stays byte-identical with and without the tracer.
TEST(SpanPropertyTest, SpanSinkDoesNotPerturbTheRun) {
  ExperimentConfig with_spans = SmallConfig(7);
  EventLog events_with;
  SpanTracer spans;
  with_spans.simulation.obs.event_log = &events_with;
  with_spans.simulation.obs.spans = &spans;
  RunExperiment(with_spans);

  ExperimentConfig without_spans = SmallConfig(7);
  EventLog events_without;
  without_spans.simulation.obs.event_log = &events_without;
  RunExperiment(without_spans);

  std::ostringstream a;
  std::ostringstream b;
  events_with.WriteNdjson(a);
  events_without.WriteNdjson(b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_FALSE(spans.log().spans().empty());
}

// With both the telemetry recorder and the span tracer attached, samples
// carry the per-VC blame rollup, it is monotone non-decreasing (cumulative
// attributed seconds), and it survives the NDJSON round-trip.
TEST(SpanPropertyTest, TelemetryCarriesVcBlameRollup) {
  ExperimentConfig config = SmallConfig(7);
  ClusterTimeSeries timeseries(Hours(6));
  SpanTracer spans;
  config.simulation.obs.timeseries = &timeseries;
  config.simulation.obs.spans = &spans;
  RunExperiment(config);

  ASSERT_FALSE(timeseries.samples().empty());
  const TelemetrySample& last = timeseries.samples().back();
  ASSERT_FALSE(last.vc_blame_s.empty());
  ASSERT_EQ(last.vc_blame_s.size() % static_cast<size_t>(kNumBlameCodes), 0u);
  int64_t total = 0;
  for (const int64_t seconds : last.vc_blame_s) {
    ASSERT_GE(seconds, 0);
    total += seconds;
  }
  EXPECT_GT(total, 0);
  // Cumulative: each sample's per-cell value never decreases. Early samples
  // may carry no rollup at all (no blame accrued yet), and the VC-major array
  // grows as higher VC ids accrue their first blame, so compare the prefix
  // both samples share.
  for (size_t i = 1; i < timeseries.samples().size(); ++i) {
    const auto& prev = timeseries.samples()[i - 1].vc_blame_s;
    const auto& cur = timeseries.samples()[i].vc_blame_s;
    ASSERT_GE(cur.size(), prev.size()) << "sample " << i;
    for (size_t k = 0; k < prev.size(); ++k) {
      ASSERT_GE(cur[k], prev[k]) << "sample " << i << " cell " << k;
    }
  }

  std::ostringstream out;
  timeseries.WriteNdjson(out, nullptr);
  std::istringstream in(out.str());
  TelemetryDigest digest;
  bool found_digest = false;
  std::string error;
  const std::vector<TelemetrySample> parsed =
      ClusterTimeSeries::ReadNdjson(in, &digest, &found_digest, &error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_EQ(parsed.size(), timeseries.samples().size());
  EXPECT_EQ(parsed.back().vc_blame_s, last.vc_blame_s);
}

TEST(SpanExplainTest, RendersTimelineForKnownJobOnly) {
  ExperimentConfig config = SmallConfig(7);
  SpanTracer spans;
  config.simulation.obs.spans = &spans;
  const ExperimentRun run = RunExperiment(config);

  // Pick a job that measurably waited, so the timeline has a queued span
  // with a blame breakdown.
  JobId waited = kNoJob;
  for (const JobRecord& job : run.result.jobs) {
    if (!job.waits.empty() && job.waits.front().wait > 0) {
      waited = job.spec.id;
      break;
    }
  }
  ASSERT_NE(waited, kNoJob);
  const std::string timeline = RenderJobExplanation(waited, spans.log().spans());
  ASSERT_FALSE(timeline.empty());
  EXPECT_NE(timeline.find("why it waited"), std::string::npos);
  EXPECT_NE(timeline.find("queued"), std::string::npos);

  EXPECT_TRUE(RenderJobExplanation(987654321, spans.log().spans()).empty());
}

std::vector<FleetClusterSpec> FleetSpecs(uint64_t base_seed) {
  std::vector<ClusterConfig> topologies;
  std::string error;
  if (!ParseClustersSpec("1x8x8,1x8x8,1x4x4", &topologies, &error)) {
    ADD_FAILURE() << "topology spec rejected: " << error;
    return {};
  }
  std::vector<FleetClusterSpec> specs;
  for (size_t i = 0; i < topologies.size(); ++i) {
    specs.push_back({"cluster" + std::to_string(i),
                     FleetClusterExperiment(topologies[i], /*days=*/1,
                                            base_seed, static_cast<int>(i))});
  }
  return specs;
}

// Dynamic routing: blame conservation holds per cluster, and — with a
// threshold of zero forcing real spills — the destination streams blame the
// pre-evaluation stretch of spilled jobs' first waits on router_queue.
TEST(SpanFleetTest, SpilloverConservesBlameAndChargesRouterQueue) {
  FleetConfig config;
  config.clusters = FleetSpecs(7);
  // Overload every member and schedule strict FIFO: a router_queue span only
  // materializes when a spilled job's first evaluation happens strictly after
  // it lands. Under the default work-conserving scheduler a pass runs at
  // enqueue time and evaluates every queued job, so the pre-eval stretch is
  // zero; with a blocked FIFO head, jobs landing behind it wait uneval'd.
  for (FleetClusterSpec& spec : config.clusters) {
    for (VcConfig& vc : spec.experiment.workload.vcs) {
      vc.arrival_rate_per_hour *= 2.5;
    }
    spec.experiment.simulation.vcs = spec.experiment.workload.vcs;
    spec.experiment.simulation.scheduler.allow_out_of_order = false;
  }
  config.router.policy = RouterPolicy::kSpillover;
  config.router.spill_threshold = 0;
  config.collect_spans = true;
  const FleetResult fleet = FleetSimulation(std::move(config)).Run();

  ASSERT_GT(fleet.spilled_jobs, 0);
  int64_t router_blame_spans = 0;
  for (const FleetClusterResult& cluster : fleet.clusters) {
    std::string error;
    EXPECT_TRUE(VerifyBlameConservation(cluster.spans.log().spans(),
                                        cluster.result.jobs, &error))
        << cluster.name << ": " << error;
    for (const SpanRecord& span : cluster.spans.log().spans()) {
      if (span.kind == SpanKind::kBlame &&
          span.code == BlameCode::kRouterQueue) {
        ++router_blame_spans;
      }
    }
  }
  EXPECT_GT(router_blame_spans, 0);
}

// Pinned-home ground rule, extended to spans: with no routing decisions to
// record, each cluster's span stream is byte-identical to the stream of its
// standalone single-cluster run.
TEST(SpanFleetTest, PinnedHomeSpanStreamsMatchStandaloneRuns) {
  FleetConfig config;
  config.clusters = FleetSpecs(7);
  config.router.policy = RouterPolicy::kPinnedHome;
  config.collect_spans = true;
  const std::vector<FleetClusterSpec> specs = FleetSpecs(7);
  const FleetResult fleet = FleetSimulation(std::move(config)).Run();

  ASSERT_EQ(fleet.clusters.size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    ExperimentConfig standalone = specs[i].experiment;
    SpanTracer tracer;
    standalone.simulation.obs.spans = &tracer;
    RunExperiment(standalone);
    EXPECT_EQ(SerializedSpans(fleet.clusters[i].spans),
              SerializedSpans(tracer))
        << specs[i].name << " span stream diverges from its standalone run";
  }
}

}  // namespace
}  // namespace philly
