#include <gtest/gtest.h>

#include <cmath>

#include "src/telemetry/host_model.h"
#include "src/telemetry/sampler.h"
#include "src/telemetry/util_model.h"
#include "src/workload/model_zoo.h"

namespace philly {
namespace {

// The Table 4 controlled experiment: ResNet-50, 2 GPUs, servers with 4 P100s.
// These four tests pin the calibration points the whole utilization model is
// anchored to.

JobActivity ResNetActivity(double base, int gpus, int servers) {
  return JobActivity{base, 1.0, gpus, servers};
}

TEST(UtilModelTable4Test, SameServer) {
  UtilizationModel model;
  // Dedicated single server: no penalties; base = 57.7%.
  EXPECT_DOUBLE_EQ(model.DistributionPenalty(1, 1.0), 1.0);
  const ShardContext shard{2, 4, 0.0, 0.0};
  EXPECT_NEAR(model.ShardUtilization(0.577, shard), 0.577, 1e-9);
}

TEST(UtilModelTable4Test, DiffServer) {
  UtilizationModel model;
  const double util = 0.577 * model.DistributionPenalty(2, 1.0);
  EXPECT_NEAR(util, 0.496, 0.002);
}

TEST(UtilModelTable4Test, IntraServer) {
  UtilizationModel model;
  // Job under study: DiffServer (2 servers). Co-tenant per server: one
  // SameServer 2-GPU ResNet job (activity 0.577) on a 4-GPU server.
  const double base_after_dist = 0.577 * model.DistributionPenalty(2, 1.0);
  ShardContext shard{1, 4, 0.0, 0.0};
  shard.pcie_load = model.NeighborLoadShare(ResNetActivity(0.577, 2, 1), 2, 4);
  const double util = model.ShardUtilization(base_after_dist, shard);
  EXPECT_NEAR(util, 0.375, 0.004);
}

TEST(UtilModelTable4Test, InterServer) {
  UtilizationModel model;
  // Co-tenants: two DiffServer 2-GPU jobs, each with 1 GPU on this server.
  const double base_after_dist = 0.577 * model.DistributionPenalty(2, 1.0);
  ShardContext shard{1, 4, 0.0, 0.0};
  const double each = model.NeighborLoadShare(ResNetActivity(0.577, 2, 2), 1, 4);
  shard.pcie_load = 2 * each;
  shard.net_load = 2 * each;  // both co-tenants are distributed
  const double util = model.ShardUtilization(base_after_dist, shard);
  EXPECT_NEAR(util, 0.365, 0.004);
}

TEST(UtilModelTable4Test, ImagesPerSecond) {
  UtilizationModel model;
  JobSpec job;
  job.model = ModelFamily::kResNet;
  job.num_gpus = 2;
  job.batch_size = 32;
  // Table 4 row 2: 114.8 / 98.0 / 75.6 / 74.1 images/s.
  EXPECT_NEAR(model.ImagesPerSecond(job, 0.577), 114.8, 1.5);
  EXPECT_NEAR(model.ImagesPerSecond(job, 0.496), 98.0, 1.5);
  EXPECT_NEAR(model.ImagesPerSecond(job, 0.375), 75.6, 1.5);
  EXPECT_NEAR(model.ImagesPerSecond(job, 0.365), 74.1, 1.8);
}

TEST(UtilModelTest, DistributionPenaltyMonotoneInServers) {
  UtilizationModel model;
  double prev = model.DistributionPenalty(1, 1.0);
  for (int servers = 2; servers <= 16; ++servers) {
    const double p = model.DistributionPenalty(servers, 1.0);
    EXPECT_LT(p, prev);
    prev = p;
  }
  EXPECT_GT(prev, 0.5);  // bounded: sync cost saturates
}

TEST(UtilModelTest, PenaltyScalesWithCommIntensity) {
  UtilizationModel model;
  EXPECT_LT(model.DistributionPenalty(4, 1.35),
            model.DistributionPenalty(4, 0.7));
}

TEST(UtilModelTest, SingleGpuNeighborsDiscounted) {
  UtilizationModel model;
  const double multi = model.NeighborLoadShare(ResNetActivity(0.6, 2, 1), 2, 8);
  const double single = model.NeighborLoadShare(ResNetActivity(0.6, 1, 1), 2, 8);
  EXPECT_LT(single, 0.5 * multi);
}

TEST(UtilModelTest, InterferenceCapped) {
  UtilizationModel model;
  ShardContext shard{1, 8, 10.0, 10.0};  // absurd loads
  const double util = model.ShardUtilization(0.6, shard);
  EXPECT_GT(util, 0.1);  // caps keep utilization positive
}

TEST(UtilModelTest, ExpectedUtilizationWeightsShards) {
  UtilizationModel model;
  Cluster cluster(ClusterConfig::Small());
  // Co-tenant on server 0 only.
  Placement cotenant;
  cotenant.shards.push_back({0, 4});
  ASSERT_TRUE(cluster.Allocate(99, cotenant));

  JobSpec job;
  job.id = 1;
  job.num_gpus = 8;
  job.base_utilization = 0.6;
  job.model = ModelFamily::kResNet;
  Placement placement;
  placement.shards.push_back({0, 4});
  placement.shards.push_back({1, 4});
  ASSERT_TRUE(cluster.Allocate(1, placement));

  const auto activity_of = [](JobId) { return JobActivity{0.6, 1.0, 4, 1}; };
  const double util = model.ExpectedUtilization(job, placement, cluster, activity_of);
  // Shard on server 0 is interfered with; shard on server 1 is clean.
  const double base = 0.6 * model.DistributionPenalty(2, 1.0);
  EXPECT_LT(util, base);
  EXPECT_GT(util, base * 0.75);
}

TEST(UtilModelTest, EmptyPlacementIsZero) {
  UtilizationModel model;
  Cluster cluster(ClusterConfig::Small());
  JobSpec job;
  EXPECT_DOUBLE_EQ(
      model.ExpectedUtilization(job, Placement{}, cluster,
                                [](JobId) { return JobActivity{}; }),
      0.0);
}

// ------------------------------------------------------------------ sampler

TEST(SamplerTest, MassConservation) {
  GangliaSampler sampler;
  double total_weight = 0.0;
  sampler.SampleSegment(0.5, Hours(10), 1,
                        [&](double, double w) { total_weight += w; });
  EXPECT_NEAR(total_weight, 600.0, 1e-6);  // 600 GPU-minutes
}

TEST(SamplerTest, BoundedSampleCount) {
  SamplerConfig config;
  config.max_samples_per_segment = 64;
  GangliaSampler sampler(config);
  int count = 0;
  sampler.SampleSegment(0.5, Days(30), 2, [&](double, double) { ++count; });
  EXPECT_EQ(count, 64);
}

TEST(SamplerTest, ShortSegmentsOneSamplePerMinute) {
  GangliaSampler sampler;
  int count = 0;
  sampler.SampleSegment(0.5, Minutes(5), 3, [&](double, double) { ++count; });
  EXPECT_EQ(count, 5);
}

TEST(SamplerTest, MeanTracksExpectedUtil) {
  GangliaSampler sampler;
  double weighted = 0.0;
  double weight = 0.0;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    sampler.SampleSegment(0.6, Hours(2), seed, [&](double v, double w) {
      weighted += v * w;
      weight += w;
    });
  }
  EXPECT_NEAR(weighted / weight, 60.0, 1.5);  // percent
}

TEST(SamplerTest, ValuesClampedToPercentRange) {
  SamplerConfig config;
  config.jitter_sigma = 0.5;  // huge jitter
  GangliaSampler sampler(config);
  sampler.SampleSegment(0.95, Hours(3), 7, [&](double v, double) {
    ASSERT_GE(v, 0.0);
    ASSERT_LE(v, 100.0);
  });
}

TEST(SamplerTest, DeterministicPerSeed) {
  GangliaSampler sampler;
  std::vector<double> a;
  std::vector<double> b;
  sampler.SampleSegment(0.4, Hours(1), 9, [&](double v, double) { a.push_back(v); });
  sampler.SampleSegment(0.4, Hours(1), 9, [&](double v, double) { b.push_back(v); });
  EXPECT_EQ(a, b);
  std::vector<double> c;
  sampler.SampleSegment(0.4, Hours(1), 10, [&](double v, double) { c.push_back(v); });
  EXPECT_NE(a, c);
}

TEST(SamplerTest, ZeroDurationEmitsNothing) {
  GangliaSampler sampler;
  int count = 0;
  sampler.SampleSegment(0.5, 0, 1, [&](double, double) { ++count; });
  EXPECT_EQ(count, 0);
}

// --------------------------------------------------------------- host model

TEST(HostModelTest, CpuLowMemoryHigh) {
  // Fig 7 shape: aggregate CPU activity well below memory activity.
  double cpu_sum = 0.0;
  double mem_sum = 0.0;
  constexpr int kN = 5000;
  for (int i = 0; i < kN; ++i) {
    JobSpec job;
    job.id = i;
    job.model = static_cast<ModelFamily>(i % kNumModelFamilies);
    const HostActivity activity = HostActivityFor(job, 1);
    EXPECT_GE(activity.cpu_fraction, 0.02);
    EXPECT_LE(activity.cpu_fraction, 1.0);
    EXPECT_GE(activity.memory_fraction, 0.05);
    EXPECT_LE(activity.memory_fraction, 1.0);
    cpu_sum += activity.cpu_fraction;
    mem_sum += activity.memory_fraction;
  }
  EXPECT_LT(cpu_sum / kN, 0.45);
  EXPECT_GT(mem_sum / kN, 0.70);
}

TEST(HostModelTest, DeterministicPerJob) {
  JobSpec job;
  job.id = 77;
  job.model = ModelFamily::kLstm;
  const HostActivity a = HostActivityFor(job, 5);
  const HostActivity b = HostActivityFor(job, 5);
  EXPECT_DOUBLE_EQ(a.cpu_fraction, b.cpu_fraction);
  EXPECT_DOUBLE_EQ(a.memory_fraction, b.memory_fraction);
}

TEST(HostModelTest, EmbeddingModelsUseMoreCpu) {
  double embed_cpu = 0.0;
  double resnet_cpu = 0.0;
  for (int i = 0; i < 2000; ++i) {
    JobSpec job;
    job.id = i;
    job.model = ModelFamily::kEmbedding;
    embed_cpu += HostActivityFor(job, 1).cpu_fraction;
    job.model = ModelFamily::kResNet;
    resnet_cpu += HostActivityFor(job, 1).cpu_fraction;
  }
  EXPECT_GT(embed_cpu, resnet_cpu * 1.2);
}

}  // namespace
}  // namespace philly
