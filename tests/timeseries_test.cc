// Tests for the telemetry stream: NDJSON codec round-trips, the per-minute
// sampling contract, digest self-checks (sample half and job half), rollup
// windowing/merging, and the two contracts shared with the event log —
// byte-identical streams regardless of pool thread count, and zero
// perturbation of simulation output when the sink is attached.
//
// TelemetryStreamDeterministicAcrossPoolThreads carries the `tsan` ctest
// label via this binary (see tests/CMakeLists.txt).

#include "src/obs/timeseries.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/analysis.h"
#include "src/core/experiment.h"
#include "src/core/runner.h"
#include "src/fault/fault_process.h"
#include "src/obs/rollup.h"

namespace philly {
namespace {

ExperimentConfig SmallConfig(uint64_t seed) {
  return ExperimentConfig::BenchScale(/*days=*/1, seed);
}

std::string NdjsonOf(const ClusterTimeSeries& ts,
                     const TelemetryDigest* digest = nullptr) {
  std::ostringstream out;
  ts.WriteNdjson(out, digest);
  return out.str();
}

TelemetrySample FullySetSample() {
  TelemetrySample s;
  s.time = Minutes(7);
  s.used_gpus = 96;
  s.free_gpus = 32;
  s.occupancy = 0.75;
  s.running_jobs = 12;
  s.queued_jobs = 5;
  s.busy_servers = 14;
  s.empty_servers = 2;
  s.racks_with_empty = 1;
  s.offline_servers = 3;
  s.rack_free_gpus = {8, 0, 24};
  s.vc_queued = {2, 3};
  s.vc_running = {7, 5};
  s.vc_used_gpus = {40, 56};
  s.util_deciles = {0, 1, 0, 2, 3, 4, 2, 1, 1, 0};
  s.locality_relaxations = 9;
  s.backoffs = 4;
  s.preemptions = 2;
  s.migrations = 1;
  s.fault_kills = 6;
  s.lost_gpu_seconds = 1234.5;
  s.util_expected_pct = 52.375;
  s.util_observed_pct = 49.0625;
  return s;
}

// ------------------------------------------------------------ NDJSON codec

TEST(TimeSeriesCodecTest, SampleRoundTripsAllFields) {
  const TelemetrySample s = FullySetSample();
  const std::string line = ToNdjsonLine(s);
  TelemetrySample parsed;
  std::string error;
  ASSERT_TRUE(TelemetrySampleFromNdjsonLine(line, &parsed, &error)) << error;
  EXPECT_EQ(parsed.time, s.time);
  EXPECT_EQ(parsed.used_gpus, s.used_gpus);
  EXPECT_EQ(parsed.free_gpus, s.free_gpus);
  EXPECT_EQ(parsed.occupancy, s.occupancy);
  EXPECT_EQ(parsed.running_jobs, s.running_jobs);
  EXPECT_EQ(parsed.queued_jobs, s.queued_jobs);
  EXPECT_EQ(parsed.busy_servers, s.busy_servers);
  EXPECT_EQ(parsed.empty_servers, s.empty_servers);
  EXPECT_EQ(parsed.racks_with_empty, s.racks_with_empty);
  EXPECT_EQ(parsed.offline_servers, s.offline_servers);
  EXPECT_EQ(parsed.rack_free_gpus, s.rack_free_gpus);
  EXPECT_EQ(parsed.vc_queued, s.vc_queued);
  EXPECT_EQ(parsed.vc_running, s.vc_running);
  EXPECT_EQ(parsed.vc_used_gpus, s.vc_used_gpus);
  EXPECT_EQ(parsed.util_deciles, s.util_deciles);
  EXPECT_EQ(parsed.locality_relaxations, s.locality_relaxations);
  EXPECT_EQ(parsed.backoffs, s.backoffs);
  EXPECT_EQ(parsed.preemptions, s.preemptions);
  EXPECT_EQ(parsed.migrations, s.migrations);
  EXPECT_EQ(parsed.fault_kills, s.fault_kills);
  EXPECT_EQ(parsed.lost_gpu_seconds, s.lost_gpu_seconds);
  EXPECT_EQ(parsed.util_expected_pct, s.util_expected_pct);
  EXPECT_EQ(parsed.util_observed_pct, s.util_observed_pct);
  // Re-serialization is byte-stable.
  EXPECT_EQ(ToNdjsonLine(parsed), line);
}

TEST(TimeSeriesCodecTest, DefaultScalarsAreOmittedButArraysStay) {
  TelemetrySample s;
  s.time = Minutes(1);
  s.rack_free_gpus = {64};
  s.vc_queued = {0};
  s.vc_running = {0};
  s.vc_used_gpus = {0};
  const std::string line = ToNdjsonLine(s);
  EXPECT_EQ(line.find("\"used\""), std::string::npos) << line;
  EXPECT_EQ(line.find("\"occ\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"rack_free\":[64]"), std::string::npos) << line;
  EXPECT_NE(line.find("\"vc_queued\":[0]"), std::string::npos) << line;
}

TEST(TimeSeriesCodecTest, DigestLineRoundTripsBitwise) {
  TelemetryDigest digest;
  digest.samples = 1440;
  digest.used_gpu_samples = 98304;
  digest.queue_depth_max = 17;
  digest.occupancy_sum = 1234.0000000000002;  // exercises shortest round-trip
  digest.util_expected_sum = 0.1 + 0.2;
  digest.util_observed_sum = 70000.125;
  digest.jobs = 321;
  digest.segments = 999;
  for (int c = 0; c < TelemetryDigest::kNumClasses; ++c) {
    digest.util_weight[static_cast<size_t>(c)] = 100.5 + c;
    digest.util_weighted_sum[static_cast<size_t>(c)] = 5000.0625 * (c + 1);
  }

  const std::string line = ToNdjsonLine(digest);
  ASSERT_TRUE(IsTelemetryDigestLine(line));
  EXPECT_FALSE(IsTelemetryDigestLine(ToNdjsonLine(FullySetSample())));
  TelemetryDigest parsed;
  std::string error;
  ASSERT_TRUE(TelemetryDigestFromNdjsonLine(line, &parsed, &error)) << error;
  EXPECT_EQ(parsed, digest);  // bitwise via defaulted operator==
}

TEST(TimeSeriesCodecTest, ReadNdjsonReportsMalformedLine) {
  std::istringstream in(
      "{\"t\":60,\"rack_free\":[],\"vc_queued\":[],\"vc_running\":[],"
      "\"vc_gpus\":[],\"util_deciles\":[]}\n"
      "not json at all\n");
  TelemetryDigest digest;
  bool found_digest = false;
  std::string error;
  const auto samples =
      ClusterTimeSeries::ReadNdjson(in, &digest, &found_digest, &error);
  EXPECT_EQ(samples.size(), 1u);
  EXPECT_FALSE(found_digest);
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

// --------------------------------------------------------- sampling contract

TEST(ClusterTimeSeriesTest, SamplesLieOnTheMinuteGrid) {
  ClusterTimeSeries ts;
  ExperimentConfig config = SmallConfig(7);
  config.simulation.obs.timeseries = &ts;
  RunExperiment(config);

  ASSERT_GT(ts.samples().size(), 100u);
  for (size_t i = 0; i < ts.samples().size(); ++i) {
    EXPECT_EQ(ts.samples()[i].time,
              static_cast<SimTime>(i + 1) * ts.period());
  }
  // Cumulative counters are monotone.
  for (size_t i = 1; i < ts.samples().size(); ++i) {
    EXPECT_GE(ts.samples()[i].preemptions, ts.samples()[i - 1].preemptions);
    EXPECT_GE(ts.samples()[i].locality_relaxations,
              ts.samples()[i - 1].locality_relaxations);
  }
  // Occupancy identity holds on every line.
  for (const TelemetrySample& s : ts.samples()) {
    int rack_free = 0;
    for (int f : s.rack_free_gpus) {
      rack_free += f;
    }
    EXPECT_EQ(rack_free, s.free_gpus) << "at t=" << s.time;
  }
}

TEST(ClusterTimeSeriesTest, FullRunStreamRoundTripsByteIdentically) {
  ClusterTimeSeries ts;
  ExperimentConfig config = SmallConfig(13);
  config.simulation.obs.timeseries = &ts;
  const auto run = RunExperiment(config);

  TelemetryDigest digest = DigestOfSamples(ts.samples());
  const TelemetryDigest jobs_half = ComputeUtilDigest(run.result.jobs);
  digest.jobs = jobs_half.jobs;
  digest.segments = jobs_half.segments;
  digest.util_weight = jobs_half.util_weight;
  digest.util_weighted_sum = jobs_half.util_weighted_sum;

  const std::string ndjson = NdjsonOf(ts, &digest);
  std::istringstream in(ndjson);
  TelemetryDigest read_digest;
  bool found_digest = false;
  std::string error;
  const auto samples =
      ClusterTimeSeries::ReadNdjson(in, &read_digest, &found_digest, &error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_TRUE(found_digest);
  ASSERT_EQ(samples.size(), ts.samples().size());
  EXPECT_EQ(read_digest, digest);

  // The reader's recomputation of both digest halves is exact: file-order
  // aggregates over the parsed samples, and the same job-derived utilization
  // aggregates from the run's records.
  EXPECT_TRUE(SampleAggregatesEqual(DigestOfSamples(samples), read_digest));
  EXPECT_TRUE(JobAggregatesEqual(ComputeUtilDigest(run.result.jobs), read_digest));

  // And the parsed samples re-serialize to the same bytes.
  std::string reserialized;
  for (const TelemetrySample& s : samples) {
    reserialized += ToNdjsonLine(s);
    reserialized += '\n';
  }
  reserialized += ToNdjsonLine(read_digest);
  reserialized += '\n';
  EXPECT_EQ(reserialized, ndjson);
}

TEST(ClusterTimeSeriesTest, TamperedStreamFailsTheSampleDigest) {
  ClusterTimeSeries ts;
  ExperimentConfig config = SmallConfig(13);
  config.simulation.obs.timeseries = &ts;
  RunExperiment(config);

  const TelemetryDigest digest = DigestOfSamples(ts.samples());
  std::vector<TelemetrySample> tampered = ts.samples();
  tampered[tampered.size() / 2].used_gpus += 1;
  EXPECT_FALSE(SampleAggregatesEqual(DigestOfSamples(tampered), digest));
}

// Attaching the telemetry sink must not change a single bit of the
// simulation output: sampling rides the clock-advance hook and adds zero
// simulator events.
TEST(ClusterTimeSeriesTest, EnabledSinkDoesNotPerturbSimulation) {
  const ExperimentConfig base = SmallConfig(23);
  const SimulationResult plain = RunExperiment(base).result;

  ClusterTimeSeries ts;
  ExperimentConfig observed = base;
  observed.simulation.obs.timeseries = &ts;
  const SimulationResult instrumented = RunExperiment(observed).result;

  ASSERT_EQ(plain.jobs.size(), instrumented.jobs.size());
  EXPECT_EQ(plain.scheduling_decisions, instrumented.scheduling_decisions);
  EXPECT_EQ(plain.preemptions, instrumented.preemptions);
  EXPECT_EQ(plain.sim_events_processed, instrumented.sim_events_processed);
  for (size_t i = 0; i < plain.jobs.size(); ++i) {
    const JobRecord& a = plain.jobs[i];
    const JobRecord& b = instrumented.jobs[i];
    ASSERT_EQ(a.spec.id, b.spec.id);
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.finish_time, b.finish_time);
    EXPECT_EQ(a.gpu_seconds, b.gpu_seconds);
    EXPECT_EQ(a.util_segments.size(), b.util_segments.size());
  }
  EXPECT_GT(ts.samples().size(), 0u);
}

// The cross-thread byte-identity contract (tsan-labelled): the same seeds
// produce the same telemetry bytes whether runs execute serially or on an
// ExperimentPool with 4 workers.
TEST(ClusterTimeSeriesTest, TelemetryStreamDeterministicAcrossPoolThreads) {
  const std::vector<uint64_t> seeds = {7, 11, 19};

  std::vector<std::string> serial;
  for (uint64_t seed : seeds) {
    ClusterTimeSeries ts;
    ExperimentConfig config = SmallConfig(seed);
    config.simulation.obs.timeseries = &ts;
    RunExperiment(config);
    serial.push_back(NdjsonOf(ts));
  }

  std::vector<ClusterTimeSeries> recorders(seeds.size());
  std::vector<ExperimentConfig> configs;
  for (size_t i = 0; i < seeds.size(); ++i) {
    ExperimentConfig config = SmallConfig(seeds[i]);
    config.simulation.obs.timeseries = &recorders[i];
    configs.push_back(std::move(config));
  }
  const ExperimentPool pool(4);
  pool.RunMany(std::move(configs));

  for (size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(NdjsonOf(recorders[i]), serial[i]) << "seed " << seeds[i];
  }
}

TEST(ClusterTimeSeriesTest, RunManyRejectsSharedRecorder) {
  ClusterTimeSeries shared;
  std::vector<ExperimentConfig> configs;
  for (uint64_t seed : {1u, 2u}) {
    ExperimentConfig config = SmallConfig(seed);
    config.simulation.obs.timeseries = &shared;
    configs.push_back(std::move(config));
  }
  const ExperimentPool pool(2);
  EXPECT_THROW(pool.RunMany(std::move(configs)), std::invalid_argument);
}

TEST(ClusterTimeSeriesTest, StreamCoversFaultCounters) {
  ClusterTimeSeries ts;
  ExperimentConfig config = SmallConfig(29);
  config.simulation.fault = FaultProcessConfig::Calibrated();
  config.simulation.obs.timeseries = &ts;
  const auto run = RunExperiment(config);

  ASSERT_FALSE(ts.samples().empty());
  const TelemetrySample& last = ts.samples().back();
  EXPECT_EQ(last.fault_kills, run.result.machine_fault_kills);
  EXPECT_EQ(last.lost_gpu_seconds, run.result.machine_fault_lost_gpu_seconds);
  EXPECT_EQ(last.preemptions, run.result.preemptions);
  EXPECT_EQ(last.migrations, run.result.migrations);
}

// ------------------------------------------------------------------ rollup

TEST(TelemetryRollupTest, WindowsDownsampleTheStream) {
  ClusterTimeSeries ts;
  ExperimentConfig config = SmallConfig(7);
  config.simulation.obs.timeseries = &ts;
  RunExperiment(config);

  TelemetryRollup rollup(Hours(1));
  rollup.AddAll(ts.samples());
  ASSERT_FALSE(rollup.windows().empty());

  int64_t total = 0;
  for (const auto& [start, window] : rollup.windows()) {
    EXPECT_EQ(start % Hours(1), 0);
    EXPECT_GT(window.samples, 0);
    EXPECT_LE(window.samples, 60);  // one-minute cadence, one-hour windows
    EXPECT_LE(window.occupancy_min, window.occupancy_max);
    total += window.samples;
  }
  EXPECT_EQ(total, static_cast<int64_t>(ts.samples().size()));
  EXPECT_EQ(rollup.occupancy_pct().count(),
            static_cast<int64_t>(ts.samples().size()));
}

TEST(TelemetryRollupTest, MergeFromFoldsShards) {
  ClusterTimeSeries a;
  ClusterTimeSeries b;
  {
    ExperimentConfig config = SmallConfig(7);
    config.simulation.obs.timeseries = &a;
    RunExperiment(config);
  }
  {
    ExperimentConfig config = SmallConfig(11);
    config.simulation.obs.timeseries = &b;
    RunExperiment(config);
  }

  TelemetryRollup merged(Hours(1));
  merged.AddAll(a.samples());
  TelemetryRollup shard(Hours(1));
  shard.AddAll(b.samples());
  merged.MergeFrom(shard);

  TelemetryRollup direct(Hours(1));
  direct.AddAll(a.samples());
  direct.AddAll(b.samples());
  ASSERT_EQ(merged.windows().size(), direct.windows().size());
  for (const auto& [start, window] : direct.windows()) {
    const auto it = merged.windows().find(start);
    ASSERT_NE(it, merged.windows().end());
    EXPECT_EQ(it->second.samples, window.samples);
    EXPECT_EQ(it->second.queued_max, window.queued_max);
  }
  EXPECT_EQ(merged.queue_depth().count(), direct.queue_depth().count());

  std::ostringstream json;
  merged.WriteJson(json);
  EXPECT_NE(json.str().find("\"windows\""), std::string::npos);
}

TEST(TelemetryRollupTest, MergeFromRejectsMismatchedWindows) {
  TelemetryRollup hourly(Hours(1));
  TelemetryRollup daily(Hours(24));
  EXPECT_THROW(hourly.MergeFrom(daily), std::invalid_argument);
}

TEST(TelemetryRollupTest, RejectsNonPositiveWindow) {
  EXPECT_THROW(TelemetryRollup(0), std::invalid_argument);
}

}  // namespace
}  // namespace philly
