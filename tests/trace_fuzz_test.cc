// Fuzz-style round-trip tests for the trace I/O layer, seeded from the
// regression cases the PR 3 bugfixes covered:
//
//   * CsvWriter -> ReadCsv over randomized fields drawn from an adversarial
//     alphabet (separators, quotes, doubled quotes, CR/LF, embedded newlines,
//     leading/trailing whitespace, empty fields) — every field must survive
//     byte-for-byte, including records that span physical lines.
//   * stdout.log framing: randomized attempt log tails whose lines collide
//     with the "=== job <id> attempt <k> lines <n>" frame markers must round
//     trip verbatim through WriteStdoutLogs/ReadJobs (the length prefix makes
//     the framing injection-proof).
//   * FieldParser strictness: randomly corrupted numeric cells in jobs.csv
//     must be tolerated as zeros (with the error counted) by default, and
//     must drop exactly the corrupted rows in strict mode.

#include "src/trace/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/common/csv.h"
#include "src/common/rng.h"

namespace philly {
namespace {

// ------------------------------------------------------------ CSV round trip

std::string RandomField(Rng& rng) {
  static const std::vector<std::string> kAtoms = {
      ",",  "\"", "\"\"", "\n", "\r\n", "a",     "Killed",
      " x", "x ", "",     "7",  "-3.5", "=== job", "|",
  };
  std::string field;
  const int atoms = static_cast<int>(rng.Between(0, 5));
  for (int i = 0; i < atoms; ++i) {
    field += kAtoms[rng.Below(kAtoms.size())];
  }
  return field;
}

class CsvFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvFuzz, RandomFieldsSurviveWriteReadExactly) {
  Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    const int rows = static_cast<int>(rng.Between(1, 8));
    const int cols = static_cast<int>(rng.Between(1, 6));
    std::vector<std::vector<std::string>> table;
    for (int r = 0; r < rows; ++r) {
      std::vector<std::string> row;
      for (int c = 0; c < cols; ++c) {
        row.push_back(RandomField(rng));
      }
      table.push_back(std::move(row));
    }
    // A row of entirely empty fields serializes as a blank line, which ReadCsv
    // (documented) skips as a record separator; keep at least one non-empty
    // cell per row so the row count is unambiguous.
    for (auto& row : table) {
      bool all_empty = true;
      for (const auto& f : row) {
        all_empty &= f.empty();
      }
      if (all_empty) {
        row[0] = "x";
      }
    }

    std::ostringstream out;
    CsvWriter writer(out);
    for (const auto& row : table) {
      writer.WriteRow(row);
    }
    std::istringstream in(out.str());
    const auto parsed = ReadCsv(in);
    ASSERT_EQ(parsed.size(), table.size()) << "round " << round;
    for (size_t r = 0; r < table.size(); ++r) {
      ASSERT_EQ(parsed[r], table[r]) << "round " << round << " row " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzz, ::testing::Values(1, 42, 1337));

TEST(CsvFuzzTest, KnownAdversarialRecords) {
  // The PR 3 regression set: quote-parity continuation across physical lines,
  // doubled quotes, and separators inside quoted fields.
  const std::vector<std::vector<std::string>> table = {
      {"plain", "with,comma", "with\"quote"},
      {"multi\nline\nfield", "", "trailing "},
      {"\"already quoted\"", "\r\n", ","},
  };
  std::ostringstream out;
  CsvWriter writer(out);
  for (const auto& row : table) {
    writer.WriteRow(row);
  }
  std::istringstream in(out.str());
  const auto parsed = ReadCsv(in);
  ASSERT_EQ(parsed.size(), table.size());
  for (size_t r = 0; r < table.size(); ++r) {
    EXPECT_EQ(parsed[r], table[r]);
  }
}

// --------------------------------------------------- stdout.log frame fuzzing

std::string RandomLogLine(Rng& rng, JobId job) {
  switch (rng.Below(8)) {
    case 0:
      // Exact frame-marker collision for a plausible other job.
      return "=== job " + std::to_string(static_cast<JobId>(rng.Below(50))) +
             " attempt " + std::to_string(rng.Below(4)) + " lines " +
             std::to_string(rng.Below(9));
    case 1:
      // Marker collision for THIS job.
      return "=== job " + std::to_string(job) + " attempt 0 lines 2";
    case 2:
      return "";  // empty log line
    case 3:
      return "=== job garbage attempt x lines y";
    case 4:
      return "CUDA out of memory on device 3";
    case 5:
      return std::string(static_cast<size_t>(rng.Below(64)), '=');
    case 6:
      return "loss: " + std::to_string(rng.Uniform());
    default:
      return "[stderr] worker " + std::to_string(rng.Below(16)) + " exited";
  }
}

std::vector<JobRecord> RandomJobs(Rng& rng, int count) {
  std::vector<JobRecord> jobs;
  for (int i = 0; i < count; ++i) {
    JobRecord job;
    job.spec.id = i + 1;
    job.spec.vc = static_cast<int>(rng.Below(4));
    job.spec.user = static_cast<int>(rng.Below(40));
    job.spec.submit_time = static_cast<SimTime>(rng.Below(100000));
    job.spec.num_gpus = static_cast<int>(rng.Between(1, 16));
    job.status = static_cast<JobStatus>(rng.Below(3));
    const int attempts = static_cast<int>(rng.Between(1, 3));
    SimTime clock = job.spec.submit_time;
    for (int k = 0; k < attempts; ++k) {
      AttemptRecord attempt;
      attempt.index = k;
      clock += static_cast<SimTime>(rng.Below(1000)) + 1;
      attempt.start = clock;
      clock += static_cast<SimTime>(rng.Below(5000)) + 1;
      attempt.end = clock;
      attempt.failed = rng.Bernoulli(0.3);
      attempt.preempted = !attempt.failed && rng.Bernoulli(0.2);
      const int shards = static_cast<int>(rng.Between(1, 3));
      for (int s = 0; s < shards; ++s) {
        attempt.placement.shards.push_back(
            {static_cast<ServerId>(3 * k + s), static_cast<int>(rng.Between(1, 8))});
      }
      const int lines = static_cast<int>(rng.Between(0, 6));
      for (int l = 0; l < lines; ++l) {
        attempt.log_tail.push_back(RandomLogLine(rng, job.spec.id));
      }
      job.attempts.push_back(std::move(attempt));
    }
    job.finish_time = clock;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

class StdoutFramingFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StdoutFramingFuzz, LogTailsWithMarkerCollisionsRoundTrip) {
  Rng rng(GetParam());
  const std::vector<JobRecord> jobs = RandomJobs(rng, 40);

  std::ostringstream jobs_out;
  std::ostringstream attempts_out;
  std::ostringstream util_out;
  std::ostringstream stdout_out;
  TraceWriter::WriteJobs(jobs, jobs_out);
  TraceWriter::WriteAttempts(jobs, attempts_out);
  TraceWriter::WriteUtilSegments(jobs, util_out);
  TraceWriter::WriteStdoutLogs(jobs, stdout_out);

  std::istringstream jobs_in(jobs_out.str());
  std::istringstream attempts_in(attempts_out.str());
  std::istringstream util_in(util_out.str());
  std::istringstream stdout_in(stdout_out.str());
  const auto restored =
      TraceReader::ReadJobs(jobs_in, attempts_in, util_in, stdout_in);
  ASSERT_EQ(restored.size(), jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    const JobRecord& a = jobs[i];
    const JobRecord& b = restored[i];
    EXPECT_EQ(a.spec.id, b.spec.id);
    EXPECT_EQ(a.status, b.status);
    ASSERT_EQ(a.attempts.size(), b.attempts.size()) << "job " << a.spec.id;
    for (size_t k = 0; k < a.attempts.size(); ++k) {
      EXPECT_EQ(a.attempts[k].start, b.attempts[k].start);
      EXPECT_EQ(a.attempts[k].end, b.attempts[k].end);
      EXPECT_EQ(EncodePlacement(a.attempts[k].placement),
                EncodePlacement(b.attempts[k].placement));
      EXPECT_EQ(a.attempts[k].log_tail, b.attempts[k].log_tail)
          << "job " << a.spec.id << " attempt " << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StdoutFramingFuzz, ::testing::Values(7, 99, 2024));

// ----------------------------------------------------- strict-mode numerics

TEST(FieldParserFuzzTest, StrictModeDropsExactlyTheCorruptedRows) {
  Rng rng(4242);
  for (int round = 0; round < 50; ++round) {
    const std::vector<JobRecord> jobs = RandomJobs(rng, 20);
    std::ostringstream jobs_out;
    TraceWriter::WriteJobs(jobs, jobs_out);

    // Corrupt one numeric cell in a random subset of data rows.
    std::istringstream split(jobs_out.str());
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(split, line)) {
      lines.push_back(line);
    }
    ASSERT_EQ(lines.size(), jobs.size() + 1);  // header + rows
    std::vector<bool> corrupted(lines.size(), false);
    for (size_t i = 1; i < lines.size(); ++i) {
      if (!rng.Bernoulli(0.3)) {
        continue;
      }
      auto fields = ParseCsvLine(lines[i]);
      // Column 3 (submit_time) and 6 (queue_delay_s) are numeric; status (5)
      // is text and must stay valid.
      const size_t column = rng.Bernoulli(0.5) ? 3 : 6;
      static const char* kGarbage[] = {"", "12abc", "NaN(", "--3", "0x1z", "1 2"};
      fields[column] = kGarbage[rng.Below(6)];
      std::ostringstream rebuilt;
      CsvWriter(rebuilt).WriteRow(fields);
      lines[i] = rebuilt.str();
      while (!lines[i].empty() && lines[i].back() == '\n') {
        lines[i].pop_back();
      }
      corrupted[i] = true;
    }
    std::string corrupted_csv;
    for (const auto& l : lines) {
      corrupted_csv += l;
      corrupted_csv += '\n';
    }
    size_t num_corrupted = 0;
    for (size_t i = 1; i < corrupted.size(); ++i) {
      num_corrupted += corrupted[i] ? 1u : 0u;
    }

    std::istringstream empty_a(""), empty_b(""), empty_c("");
    std::istringstream tolerant_in(corrupted_csv);
    TraceReadStats tolerant_stats;
    const auto tolerant = TraceReader::ReadJobs(tolerant_in, empty_a, empty_b,
                                                empty_c, {}, &tolerant_stats);
    EXPECT_EQ(tolerant.size(), jobs.size());
    EXPECT_EQ(tolerant_stats.numeric_parse_errors,
              static_cast<int64_t>(num_corrupted));
    EXPECT_EQ(tolerant_stats.rows_rejected, 0);

    std::istringstream empty_d(""), empty_e(""), empty_f("");
    std::istringstream strict_in(corrupted_csv);
    TraceReadStats strict_stats;
    TraceReadOptions strict;
    strict.strict = true;
    const auto survivors = TraceReader::ReadJobs(strict_in, empty_d, empty_e,
                                                 empty_f, strict, &strict_stats);
    EXPECT_EQ(survivors.size(), jobs.size() - num_corrupted);
    EXPECT_EQ(strict_stats.rows_rejected, static_cast<int64_t>(num_corrupted));
    // The surviving rows are exactly the uncorrupted ones, in order.
    size_t j = 0;
    for (size_t i = 0; i < jobs.size(); ++i) {
      if (corrupted[i + 1]) {
        continue;
      }
      ASSERT_LT(j, survivors.size());
      EXPECT_EQ(survivors[j].spec.id, jobs[i].spec.id);
      ++j;
    }
  }
}

}  // namespace
}  // namespace philly
