#include "src/trace/trace_io.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "src/sched/simulation.h"

namespace philly {
namespace {

std::vector<JobRecord> RunSmall() {
  WorkloadConfig workload = WorkloadConfig::Scaled(1, 13);
  workload.prepopulate_busy_gpus = 300;
  SimulationConfig config;
  config.vcs = workload.vcs;
  ClusterSimulation sim(config, WorkloadGenerator(workload).Generate());
  return sim.Run().jobs;
}

TEST(PlacementCodecTest, RoundTrip) {
  Placement p;
  p.shards.push_back({3, 8});
  p.shards.push_back({17, 2});
  const std::string encoded = EncodePlacement(p);
  EXPECT_EQ(encoded, "3:8|17:2");
  const Placement decoded = DecodePlacement(encoded);
  ASSERT_EQ(decoded.shards.size(), 2u);
  EXPECT_EQ(decoded.shards[0].server, 3);
  EXPECT_EQ(decoded.shards[0].gpus, 8);
  EXPECT_EQ(decoded.shards[1].server, 17);
  EXPECT_EQ(decoded.shards[1].gpus, 2);
}

TEST(PlacementCodecTest, EmptyPlacement) {
  EXPECT_EQ(EncodePlacement(Placement{}), "");
  EXPECT_TRUE(DecodePlacement("").Empty());
}

TEST(TraceIoTest, FullRoundTrip) {
  const auto jobs = RunSmall();
  ASSERT_GT(jobs.size(), 500u);

  std::stringstream jobs_csv;
  std::stringstream attempts_csv;
  std::stringstream util_csv;
  std::stringstream stdout_log;
  TraceWriter::WriteJobs(jobs, jobs_csv);
  TraceWriter::WriteAttempts(jobs, attempts_csv);
  TraceWriter::WriteUtilSegments(jobs, util_csv);
  TraceWriter::WriteStdoutLogs(jobs, stdout_log);

  const auto restored =
      TraceReader::ReadJobs(jobs_csv, attempts_csv, util_csv, stdout_log);
  ASSERT_EQ(restored.size(), jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    const JobRecord& a = jobs[i];
    const JobRecord& b = restored[i];
    EXPECT_EQ(a.spec.id, b.spec.id);
    EXPECT_EQ(a.spec.vc, b.spec.vc);
    EXPECT_EQ(a.spec.user, b.spec.user);
    EXPECT_EQ(a.spec.num_gpus, b.spec.num_gpus);
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.finish_time, b.finish_time);
    EXPECT_EQ(a.InitialQueueDelay(), b.InitialQueueDelay());
    EXPECT_EQ(a.executed_epochs, b.executed_epochs);
    ASSERT_EQ(a.attempts.size(), b.attempts.size());
    for (size_t k = 0; k < a.attempts.size(); ++k) {
      EXPECT_EQ(a.attempts[k].start, b.attempts[k].start);
      EXPECT_EQ(a.attempts[k].end, b.attempts[k].end);
      EXPECT_EQ(a.attempts[k].failed, b.attempts[k].failed);
      EXPECT_EQ(a.attempts[k].preempted, b.attempts[k].preempted);
      EXPECT_EQ(EncodePlacement(a.attempts[k].placement),
                EncodePlacement(b.attempts[k].placement));
      EXPECT_EQ(a.attempts[k].log_tail, b.attempts[k].log_tail);
    }
    ASSERT_EQ(a.util_segments.size(), b.util_segments.size());
    for (size_t k = 0; k < a.util_segments.size(); ++k) {
      EXPECT_NEAR(a.util_segments[k].expected_util, b.util_segments[k].expected_util,
                  1e-6);
      EXPECT_EQ(a.util_segments[k].duration, b.util_segments[k].duration);
      EXPECT_EQ(a.util_segments[k].num_servers, b.util_segments[k].num_servers);
    }
  }
}

TEST(TraceIoTest, HeadersPresent) {
  const std::vector<JobRecord> empty;
  std::stringstream out;
  TraceWriter::WriteJobs(empty, out);
  EXPECT_NE(out.str().find("job_id,vc,user"), std::string::npos);
  std::stringstream attempts;
  TraceWriter::WriteAttempts(empty, attempts);
  EXPECT_NE(attempts.str().find("placement"), std::string::npos);
}

TEST(TraceIoTest, WriteDirectoryCreatesFiles) {
  const auto jobs = RunSmall();
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(TraceWriter::WriteDirectory(jobs, dir));
  std::ifstream check(dir + "/jobs.csv");
  EXPECT_TRUE(check.good());
}

TEST(TraceIoTest, WriteDirectoryFailsForMissingPath) {
  EXPECT_FALSE(TraceWriter::WriteDirectory({}, "/nonexistent/path/here"));
}

TEST(TraceIoTest, ReaderToleratesMalformedRows) {
  std::stringstream jobs_csv(
      "job_id,vc,user,submit_time,num_gpus,status,queue_delay_s,finish_time,"
      "attempts,retries,gpu_seconds,executed_epochs,planned_epochs,"
      "logs_convergence\n"
      "1,0,5,100,8,Passed,0,5000,1,0,39200,10,10,0\n"
      "garbage row\n"
      "2,1,6,200,1,Killed,60,9000,2,1,8740,3,20,1\n"
      ",,,,,,,,,,,,,\n");
  std::stringstream attempts_csv(
      "job_id,attempt,start,end,failed,preempted,placement\n"
      "1,0,100,5000,0,0,3:8\n"
      "999,0,1,2,0,0,1:1\n"
      "2,0,260,400,1,0,7:1\n"
      "2,1,500,9000,0,0,notaplacement\n"
      "short,row\n");
  std::stringstream util_csv(
      "job_id,segment,expected_util,duration_s,num_servers\n"
      "1,0,0.5,4900,1\n"
      "bogus\n"
      "2,0,0.25,140,1\n");
  std::stringstream stdout_log(
      "=== job 2 attempt 0\n"
      "MemoryError\n"
      "=== job 424242 attempt 9\n"
      "orphan text that belongs to no job\n");

  const auto jobs = TraceReader::ReadJobs(jobs_csv, attempts_csv, util_csv, stdout_log);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].spec.id, 1);
  EXPECT_EQ(jobs[0].attempts.size(), 1u);
  EXPECT_EQ(jobs[0].util_segments.size(), 1u);
  EXPECT_EQ(jobs[1].spec.id, 2);
  ASSERT_EQ(jobs[1].attempts.size(), 2u);
  EXPECT_TRUE(jobs[1].attempts[0].failed);
  ASSERT_EQ(jobs[1].attempts[0].log_tail.size(), 1u);
  EXPECT_EQ(jobs[1].attempts[0].log_tail[0], "MemoryError");
  // Unparseable placement decodes to empty, not a crash.
  EXPECT_TRUE(jobs[1].attempts[1].placement.Empty());
}

// Regression: numeric fields that failed to parse used to become 0 silently
// (std::from_chars errors were ignored), so a corrupted trace produced
// plausible-looking zeros instead of any signal. The reader now counts every
// bad field, and strict mode drops the whole row.
TEST(TraceIoTest, CountsNumericParseErrorsAndSupportsStrictMode) {
  const std::string jobs_header =
      "job_id,vc,user,submit_time,num_gpus,status,queue_delay_s,finish_time,"
      "attempts,retries,gpu_seconds,executed_epochs,planned_epochs,"
      "logs_convergence\n";
  const std::string jobs_rows =
      "1,0,5,100,8,Passed,0,5000,1,0,39200,10,10,0\n"
      "2,1,6,oops,1,Killed,60,9000,1,0,8740,3,20,1\n";  // bad submit_time
  const std::string attempts =
      "job_id,attempt,start,end,failed,preempted,placement\n"
      "1,0,100,5000,0,0,3:8\n"
      "2,0,xyz,9000,1,0,7:1\n";  // bad start
  const std::string util = "job_id,segment,expected_util,duration_s,num_servers\n";

  {
    std::stringstream jobs_csv(jobs_header + jobs_rows);
    std::stringstream attempts_csv(attempts);
    std::stringstream util_csv(util);
    std::stringstream stdout_log;
    TraceReadStats stats;
    const auto jobs = TraceReader::ReadJobs(jobs_csv, attempts_csv, util_csv,
                                            stdout_log, {}, &stats);
    // Tolerant default: rows kept, bad fields as 0 — but now counted.
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_EQ(jobs[1].spec.submit_time, 0);
    EXPECT_EQ(stats.numeric_parse_errors, 2);
    EXPECT_EQ(stats.rows_rejected, 0);
  }
  {
    std::stringstream jobs_csv(jobs_header + jobs_rows);
    std::stringstream attempts_csv(attempts);
    std::stringstream util_csv(util);
    std::stringstream stdout_log;
    TraceReadOptions options;
    options.strict = true;
    TraceReadStats stats;
    const auto jobs = TraceReader::ReadJobs(jobs_csv, attempts_csv, util_csv,
                                            stdout_log, options, &stats);
    // Strict: both corrupted rows are dropped whole — the job row for its bad
    // submit_time, and the attempt row because its owning job is gone (so its
    // own bad field is never even parsed).
    ASSERT_EQ(jobs.size(), 1u);
    EXPECT_EQ(jobs[0].spec.id, 1);
    ASSERT_EQ(jobs[0].attempts.size(), 1u);
    EXPECT_EQ(stats.numeric_parse_errors, 1);
    EXPECT_EQ(stats.rows_rejected, 2);
  }
}

// Regression: the stdout.log framing used to be a bare "=== job I attempt K"
// marker, so a log line that happened to look like a marker was re-parsed as
// one on read and the tail after it attached to the wrong attempt (or was
// dropped). The length-prefixed framing reads tails verbatim.
TEST(TraceIoTest, LogTailFramingSurvivesMarkerInjection) {
  JobRecord job;
  job.spec.id = 7;
  job.spec.num_gpus = 1;
  AttemptRecord attempt;
  attempt.index = 0;
  attempt.log_tail = {
      "normal line",
      "=== job 7 attempt 1",          // looks exactly like a legacy marker
      "=== job 999 attempt 0 lines 3",  // looks like a prefixed marker
      "trailing line",
  };
  job.attempts.push_back(attempt);

  std::stringstream jobs_csv;
  std::stringstream attempts_csv;
  std::stringstream util_csv;
  std::stringstream stdout_log;
  TraceWriter::WriteJobs({job}, jobs_csv);
  TraceWriter::WriteAttempts({job}, attempts_csv);
  TraceWriter::WriteUtilSegments({job}, util_csv);
  TraceWriter::WriteStdoutLogs({job}, stdout_log);

  const auto restored =
      TraceReader::ReadJobs(jobs_csv, attempts_csv, util_csv, stdout_log);
  ASSERT_EQ(restored.size(), 1u);
  ASSERT_EQ(restored[0].attempts.size(), 1u);
  EXPECT_EQ(restored[0].attempts[0].log_tail, attempt.log_tail);
}

TEST(TraceIoTest, ReaderAcceptsLegacyUnprefixedFraming) {
  JobRecord job;
  job.spec.id = 3;
  job.spec.num_gpus = 1;
  AttemptRecord attempt;
  attempt.index = 0;
  job.attempts.push_back(attempt);

  std::stringstream jobs_csv;
  std::stringstream attempts_csv;
  std::stringstream util_csv;
  TraceWriter::WriteJobs({job}, jobs_csv);
  TraceWriter::WriteAttempts({job}, attempts_csv);
  TraceWriter::WriteUtilSegments({job}, util_csv);
  std::stringstream stdout_log(
      "=== job 3 attempt 0\n"
      "old-style tail line\n");
  const auto restored =
      TraceReader::ReadJobs(jobs_csv, attempts_csv, util_csv, stdout_log);
  ASSERT_EQ(restored.size(), 1u);
  ASSERT_EQ(restored[0].attempts.size(), 1u);
  ASSERT_EQ(restored[0].attempts[0].log_tail.size(), 1u);
  EXPECT_EQ(restored[0].attempts[0].log_tail[0], "old-style tail line");
}

TEST(TraceIoTest, ReaderHandlesEmptyStreams) {
  std::stringstream empty1;
  std::stringstream empty2;
  std::stringstream empty3;
  std::stringstream empty4;
  EXPECT_TRUE(TraceReader::ReadJobs(empty1, empty2, empty3, empty4).empty());
}

}  // namespace
}  // namespace philly
