#include "src/core/validate.h"

#include <gtest/gtest.h>

#include "src/core/experiment.h"
#include "src/fault/fault_process.h"

namespace philly {
namespace {

JobRecord CleanJob() {
  JobRecord job;
  job.spec.id = 1;
  job.spec.num_gpus = 8;
  job.spec.submit_time = 100;
  job.finish_time = 700;
  WaitRecord wait;
  wait.wait = 50;
  wait.fragmentation_time = 40;
  job.waits.push_back(wait);
  AttemptRecord attempt;
  attempt.start = 150;
  attempt.end = 700;
  attempt.placement.shards = {{0, 8}};
  job.attempts.push_back(attempt);
  job.util_segments.push_back({0.5, 550, 1});
  job.gpu_seconds = 550.0 * 8;
  return job;
}

TEST(ValidateTest, CleanRecordPasses) {
  const auto report = ValidateJobs({CleanJob()});
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.jobs_checked, 1);
  EXPECT_EQ(report.attempts_checked, 1);
}

TEST(ValidateTest, DetectsGangSizeMismatch) {
  auto job = CleanJob();
  job.attempts[0].placement.shards = {{0, 4}};
  job.gpu_seconds = 550.0 * 4;
  const auto report = ValidateJobs({job});
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.issues[0].what.find("gang size"), std::string::npos);
}

TEST(ValidateTest, DetectsOverlappingAttempts) {
  auto job = CleanJob();
  AttemptRecord second = job.attempts[0];
  second.index = 1;
  second.start = 600;  // overlaps the first attempt
  second.end = 900;
  job.attempts.push_back(second);
  job.waits.push_back(WaitRecord{});
  job.util_segments.push_back({0.5, 300, 1});
  job.gpu_seconds += 300.0 * 8;
  const auto report = ValidateJobs({job});
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.issues[0].what.find("starts before"), std::string::npos);
}

TEST(ValidateTest, DetectsGpuTimeMismatch) {
  auto job = CleanJob();
  job.gpu_seconds = 1.0;
  const auto report = ValidateJobs({job});
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.issues[0].what.find("gpu_seconds"), std::string::npos);
}

TEST(ValidateTest, DetectsSegmentGap) {
  auto job = CleanJob();
  job.util_segments[0].duration = 100;  // attempts total 550
  const auto report = ValidateJobs({job});
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.issues[0].what.find("segments cover"), std::string::npos);
  ValidateOptions lax;
  lax.check_segment_coverage = false;
  EXPECT_TRUE(ValidateJobs({job}, lax).ok());
}

TEST(ValidateTest, DetectsBadWaitAttribution) {
  auto job = CleanJob();
  job.waits[0].fair_share_time = 1000;  // exceeds the 50s wait
  const auto report = ValidateJobs({job});
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.issues[0].what.find("attribution"), std::string::npos);
}

TEST(ValidateTest, IssueCapRespected) {
  std::vector<JobRecord> jobs;
  for (int i = 0; i < 50; ++i) {
    auto job = CleanJob();
    job.spec.id = i + 1;
    job.gpu_seconds = -1.0;
    jobs.push_back(job);
  }
  ValidateOptions options;
  options.max_issues = 5;
  const auto report = ValidateJobs(jobs, options);
  EXPECT_EQ(report.issues.size(), 5u);
  EXPECT_EQ(report.jobs_checked, 50);
}

// Property: simulator output validates cleanly across seeds and scheduler
// features — the library-level statement of what the per-feature tests assert
// piecewise.
class SimulatorOutputValid : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimulatorOutputValid, EveryRunValidates) {
  ExperimentConfig config = ExperimentConfig::BenchScale(2, GetParam());
  // Exercise the optional mechanisms too.
  config.simulation.scheduler.enable_prerun_pool = (GetParam() % 2) == 0;
  config.simulation.scheduler.enable_migration = (GetParam() % 3) == 0;
  const ExperimentRun run = RunExperiment(config);
  const auto report = ValidateJobs(run.result.jobs);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorOutputValid,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ----------------------------------------------- failure-share distribution

// The classified failure-reason mix of simulator output must track the
// published Table 7 shares within tolerance.
TEST(FailureShareTest, SimulatedMixTracksTable7) {
  const ExperimentRun run = RunExperiment(ExperimentConfig::BenchScale(3));
  const auto report = ValidateFailureShares(run.result.jobs);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.attempts_checked, 0);
}

// The calibrated machine-fault process is rare enough that it must not push
// any published reason outside tolerance.
TEST(FailureShareTest, CalibratedFaultsDoNotDistortTheMix) {
  ExperimentConfig config = ExperimentConfig::BenchScale(3);
  config.simulation.fault = FaultProcessConfig::Calibrated();
  const ExperimentRun run = RunExperiment(config);
  const auto report = ValidateFailureShares(run.result.jobs);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// Sanity of the check itself: grossly inflating one reason's trial count must
// trip the tolerance.
TEST(FailureShareTest, SkewedMixFailsTheCheck) {
  const ExperimentRun run = RunExperiment(ExperimentConfig::BenchScale(2));
  std::vector<JobRecord> jobs = run.result.jobs;
  const JobRecord* failed_job = nullptr;
  for (const JobRecord& job : jobs) {
    for (const AttemptRecord& attempt : job.attempts) {
      if (attempt.failed && !attempt.preempted && !attempt.machine_fault) {
        failed_job = &job;
        break;
      }
    }
    if (failed_job != nullptr) {
      break;
    }
  }
  ASSERT_NE(failed_job, nullptr) << "workload produced no classifiable failure";
  JobRecord dupe = *failed_job;
  for (int i = 0; i < 2000; ++i) {
    dupe.spec.id = 1000000 + i;
    jobs.push_back(dupe);
  }
  EXPECT_FALSE(ValidateFailureShares(jobs).ok());
}

TEST(FailureShareTest, TooFewTrialsPassVacuously) {
  const auto report = ValidateFailureShares({});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.attempts_checked, 0);
}

}  // namespace
}  // namespace philly
