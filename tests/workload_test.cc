#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "src/workload/generator.h"
#include "src/workload/job.h"
#include "src/workload/loss_curve.h"
#include "src/workload/model_zoo.h"

namespace philly {
namespace {

WorkloadConfig TestConfig(int days = 4, uint64_t seed = 1) {
  WorkloadConfig config = WorkloadConfig::Scaled(days, seed);
  config.prepopulate_busy_gpus = 0;   // pure arrival stream for rate tests
  config.mean_burst_interval = 0;     // no deadline pushes
  config.weekly_amplitude = 0.0;
  return config;
}

TEST(GeneratorTest, BurstsInflateArrivals) {
  WorkloadConfig quiet = TestConfig(20, 3);
  WorkloadConfig bursty = TestConfig(20, 3);
  bursty.mean_burst_interval = Days(6);
  bursty.min_burst_multiplier = 2.0;
  bursty.max_burst_multiplier = 3.0;
  const auto base = WorkloadGenerator(quiet).Generate().size();
  const auto inflated = WorkloadGenerator(bursty).Generate().size();
  EXPECT_GT(inflated, base + base / 20);
}

TEST(JobTest, BucketBoundaries) {
  EXPECT_EQ(BucketOf(1), SizeBucket::k1Gpu);
  EXPECT_EQ(BucketOf(2), SizeBucket::k2To4Gpu);
  EXPECT_EQ(BucketOf(4), SizeBucket::k2To4Gpu);
  EXPECT_EQ(BucketOf(5), SizeBucket::k5To8Gpu);
  EXPECT_EQ(BucketOf(8), SizeBucket::k5To8Gpu);
  EXPECT_EQ(BucketOf(9), SizeBucket::kGt8Gpu);
  EXPECT_EQ(BucketOf(64), SizeBucket::kGt8Gpu);
}

TEST(JobTest, ToStringCoversAll) {
  EXPECT_EQ(ToString(JobStatus::kPassed), "Passed");
  EXPECT_EQ(ToString(JobStatus::kKilled), "Killed");
  EXPECT_EQ(ToString(JobStatus::kUnsuccessful), "Unsuccessful");
  EXPECT_EQ(ToString(SizeBucket::kGt8Gpu), ">8 GPU");
  EXPECT_EQ(ToString(ModelFamily::kResNet), "resnet");
}

TEST(ModelZooTest, ProfilesConsistent) {
  double mix = 0.0;
  for (const auto& profile : AllProfiles()) {
    EXPECT_GT(profile.base_util_mean, 0.0);
    EXPECT_LT(profile.base_util_mean, 1.0);
    EXPECT_GT(profile.comm_intensity, 0.0);
    EXPECT_GT(profile.reference_batch, 0);
    mix += profile.mix_weight;
  }
  EXPECT_NEAR(mix, 1.0, 1e-9);
  // ResNet prior is pinned by the Table 4 calibration point.
  EXPECT_NEAR(ProfileOf(ModelFamily::kResNet).base_util_mean, 0.577, 1e-9);
}

TEST(ModelZooTest, BatchScaleCalibration) {
  // 57.7% at batch 32 -> 71.1% at batch 64 for ResNet-50 (§3.2.1).
  EXPECT_NEAR(0.577 * BatchUtilizationScale(64, 32), 0.711, 0.01);
  EXPECT_DOUBLE_EQ(BatchUtilizationScale(32, 32), 1.0);
  // "increases only marginally for larger batches": saturating.
  const double b128 = BatchUtilizationScale(128, 32);
  const double b256 = BatchUtilizationScale(256, 32);
  EXPECT_LT(b256 - b128, 0.05);
  EXPECT_LT(b256, 1.32);
  // Smaller batches lose utilization.
  EXPECT_LT(BatchUtilizationScale(16, 32), 1.0);
}

TEST(GeneratorTest, DeterministicForSeed) {
  const auto a = WorkloadGenerator(TestConfig(2, 7)).Generate();
  const auto b = WorkloadGenerator(TestConfig(2, 7)).Generate();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].submit_time, b[i].submit_time);
    EXPECT_EQ(a[i].num_gpus, b[i].num_gpus);
    EXPECT_EQ(a[i].planned_duration, b[i].planned_duration);
    EXPECT_DOUBLE_EQ(a[i].base_utilization, b[i].base_utilization);
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  const auto a = WorkloadGenerator(TestConfig(2, 7)).Generate();
  const auto b = WorkloadGenerator(TestConfig(2, 8)).Generate();
  int differing = 0;
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    differing += a[i].submit_time != b[i].submit_time ||
                 a[i].num_gpus != b[i].num_gpus;
  }
  EXPECT_GT(differing, static_cast<int>(n / 2));
}

TEST(GeneratorTest, ArrivalCountMatchesRates) {
  const auto config = TestConfig(6);
  const auto jobs = WorkloadGenerator(config).Generate();
  const double expected = config.TotalArrivalRate() * 24.0 * 6.0;
  EXPECT_NEAR(static_cast<double>(jobs.size()), expected, expected * 0.06);
}

TEST(GeneratorTest, SortedBySubmitTimeWithinWindow) {
  const auto config = TestConfig(3);
  const auto jobs = WorkloadGenerator(config).Generate();
  for (size_t i = 1; i < jobs.size(); ++i) {
    EXPECT_LE(jobs[i - 1].submit_time, jobs[i].submit_time);
  }
  EXPECT_LT(jobs.back().submit_time, config.duration);
}

TEST(GeneratorTest, BucketMixRoughlyPaperShaped) {
  const auto jobs = WorkloadGenerator(TestConfig(8)).Generate();
  std::array<int, kNumSizeBuckets> counts = {};
  for (const auto& job : jobs) {
    ++counts[static_cast<size_t>(BucketOf(job.num_gpus))];
  }
  const double n = static_cast<double>(jobs.size());
  // Majority 1-GPU; 5-8 GPU several times more common than >8 GPU.
  EXPECT_GT(counts[0] / n, 0.40);
  EXPECT_GT(counts[2], counts[3] * 3);
  EXPECT_GT(counts[3], 0);
}

TEST(GeneratorTest, Vc3HasNoGt8Jobs) {
  const auto jobs = WorkloadGenerator(TestConfig(8)).Generate();
  for (const auto& job : jobs) {
    if (job.vc == 3) {
      EXPECT_LE(job.num_gpus, 8);
    }
  }
}

TEST(GeneratorTest, LargerJobsRunLonger) {
  const auto jobs = WorkloadGenerator(TestConfig(10)).Generate();
  std::array<std::vector<double>, kNumSizeBuckets> durations;
  for (const auto& job : jobs) {
    durations[static_cast<size_t>(BucketOf(job.num_gpus))].push_back(
        static_cast<double>(job.planned_duration));
  }
  std::array<double, kNumSizeBuckets> medians = {};
  for (int b = 0; b < kNumSizeBuckets; ++b) {
    auto& v = durations[static_cast<size_t>(b)];
    ASSERT_FALSE(v.empty());
    std::nth_element(v.begin(), v.begin() + static_cast<long>(v.size() / 2), v.end());
    medians[static_cast<size_t>(b)] = v[v.size() / 2];
  }
  EXPECT_LT(medians[0], medians[1]);
  EXPECT_LT(medians[1], medians[2]);
  EXPECT_LT(medians[2], medians[3]);
}

TEST(GeneratorTest, HeavyTailFractionOverOneWeek) {
  const auto jobs = WorkloadGenerator(TestConfig(12)).Generate();
  int over = 0;
  for (const auto& job : jobs) {
    if (job.planned_duration > Days(7)) {
      ++over;
    }
  }
  const double frac = static_cast<double>(over) / static_cast<double>(jobs.size());
  // Paper: ~0.5% of jobs exceed one week.
  EXPECT_GT(frac, 0.001);
  EXPECT_LT(frac, 0.03);
}

TEST(GeneratorTest, KillPropensityRisesWithDuration) {
  const auto jobs = WorkloadGenerator(TestConfig(12)).Generate();
  int short_killed = 0;
  int short_total = 0;
  int long_killed = 0;
  int long_total = 0;
  for (const auto& job : jobs) {
    const bool killed = job.intrinsic == IntrinsicOutcome::kKilledByUser;
    if (job.planned_duration < Hours(1)) {
      ++short_total;
      short_killed += killed;
    } else if (job.planned_duration > Days(1)) {
      ++long_total;
      long_killed += killed;
    }
  }
  ASSERT_GT(short_total, 100);
  ASSERT_GT(long_total, 100);
  EXPECT_GT(static_cast<double>(long_killed) / long_total,
            2.0 * static_cast<double>(short_killed) / short_total);
}

TEST(GeneratorTest, FieldRangesValid) {
  const auto jobs = WorkloadGenerator(TestConfig(4)).Generate();
  for (const auto& job : jobs) {
    ASSERT_GT(job.num_gpus, 0);
    ASSERT_LE(job.num_gpus, 64);
    ASSERT_GE(job.base_utilization, 0.05);
    ASSERT_LE(job.base_utilization, 1.0);
    ASSERT_GE(job.planned_epochs, 2);
    ASSERT_LE(job.planned_epochs, 1000);
    ASSERT_GE(job.planned_duration, 30);
    ASSERT_GT(job.kill_fraction, 0.0);
    ASSERT_LE(job.kill_fraction, 1.0);
    ASSERT_GE(job.user, 0);
    ASSERT_GT(job.loss_curve.decay_rate, 0.0);
  }
}

TEST(GeneratorTest, ConvergenceLoggingFractionApproximate) {
  const auto jobs = WorkloadGenerator(TestConfig(12)).Generate();
  int logging = 0;
  for (const auto& job : jobs) {
    logging += job.logs_convergence ? 1 : 0;
  }
  const double frac = static_cast<double>(logging) / static_cast<double>(jobs.size());
  EXPECT_NEAR(frac, 0.026, 0.008);  // paper: 2502 / 96260
}

TEST(GeneratorTest, WarmCohortSumsToTarget) {
  WorkloadConfig config = TestConfig(1, 5);
  config.prepopulate_busy_gpus = 500;
  const auto jobs = WorkloadGenerator(config).Generate();
  int warm_gpus = 0;
  for (const auto& job : jobs) {
    if (job.submit_time == 0) {
      warm_gpus += job.num_gpus;
    }
  }
  EXPECT_GE(warm_gpus, 500);
  EXPECT_LT(warm_gpus, 500 + 64);
}

TEST(LossCurveTest, DeterministicGivenSeed) {
  LossCurveParams params;
  const LossCurve a(params, 100, 42);
  const LossCurve b(params, 100, 42);
  for (int e = 1; e <= 100; ++e) {
    EXPECT_DOUBLE_EQ(a.LossAt(e), b.LossAt(e));
  }
}

TEST(LossCurveTest, TrendDecreases) {
  LossCurveParams params;
  params.noise_sigma = 0.0;
  const LossCurve curve(params, 50, 1);
  EXPECT_GT(curve.LossAt(1), curve.LossAt(10));
  EXPECT_GT(curve.LossAt(10), curve.LossAt(50));
  EXPECT_EQ(curve.BestEpoch(50), 50);
}

TEST(LossCurveTest, NoisyCurveBottomsOutEarlier) {
  LossCurveParams params;
  params.noise_sigma = 0.05;  // dwarfs the end drift
  int earlier = 0;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    const LossCurve curve(params, 200, seed);
    if (curve.BestEpoch(200) < 200) {
      ++earlier;
    }
  }
  EXPECT_GT(earlier, 40);
}

TEST(LossCurveTest, WithinThresholdBeforeBest) {
  LossCurveParams params;
  const LossCurve curve(params, 100, 9);
  const int within = curve.FirstEpochWithin(0.001, 100);
  const int best = curve.BestEpoch(100);
  EXPECT_LE(within, best);
  EXPECT_GE(within, 1);
}

TEST(LossCurveTest, ExecutedPrefixRespected) {
  LossCurveParams params;
  const LossCurve curve(params, 100, 11);
  EXPECT_LE(curve.BestEpoch(30), 30);
  EXPECT_LE(curve.FirstEpochWithin(0.001, 30), 30);
}

TEST(LossCurveTest, SeedHelperIsStable) {
  EXPECT_EQ(LossCurveSeed(42), LossCurveSeed(42));
  EXPECT_NE(LossCurveSeed(42), LossCurveSeed(43));
}

// Parameterized: the f_star construction in the generator should place the
// within-0.1% epoch near f_star * planned_epochs for clean curves.
class LossCurveTargetSweep : public ::testing::TestWithParam<double> {};

TEST_P(LossCurveTargetSweep, WithinEpochTracksTarget) {
  const double f_star = GetParam();
  const int epochs = 200;
  LossCurveParams params;
  params.floor = 1.0;
  params.amplitude = 2.0;
  params.decay_rate = std::log(params.amplitude / (0.001 * params.floor)) /
                      (f_star * epochs);
  params.end_drift = 0.0005;
  params.noise_sigma = 0.0001;
  const LossCurve curve(params, epochs, 3);
  const double measured = curve.FirstEpochWithin(0.001, epochs) / 200.0;
  EXPECT_NEAR(measured, f_star, 0.12);
}

INSTANTIATE_TEST_SUITE_P(Targets, LossCurveTargetSweep,
                         ::testing::Values(0.15, 0.25, 0.35, 0.5, 0.65));

}  // namespace
}  // namespace philly
