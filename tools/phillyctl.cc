// phillyctl — command-line front end for the phillysim library.
//
//   phillyctl simulate --days 10 --seed 42 --out DIR [options]
//       Run a simulation and write the trace artifact(s) plus a
//       manifest.json recording seed/config/knobs for reproduction.
//   phillyctl analyze --trace DIR [--figures DIR]
//       Re-analyze a previously written native trace and print every table.
//   phillyctl analyze --from-events FILE [--trace DIR]
//       Rebuild the scheduler-stream analyses (Table 6, Fig 2, Fig 3,
//       Table 2) from an NDJSON event log alone. With --trace, cross-check
//       the rebuilt per-job records against the native trace and fail on
//       any divergence.
//   phillyctl analyze --telemetry FILE [--trace DIR]
//       Rebuild the Table 3 utilization aggregates from a telemetry stream
//       alone and verify them against the digest the writer embedded (exact,
//       bitwise). With --trace, also recompute the job-derived half from the
//       native trace and fail on any divergence.
//   phillyctl analyze --from-events FILE --spans FILE
//       Additionally verify the causal span stream: the blame-conservation
//       identity against the event-rebuilt job records (every attributed
//       interval sums exactly to the measured queueing delay), then rebuild
//       Table 2 from the attributed spans alone and cross-check it against
//       the native analysis, failing on any divergence.
//   phillyctl explain --job ID --spans FILE
//       Print the causal timeline of one job — when it queued, what each
//       stretch of waiting was blamed on, when it ran, why each attempt
//       ended — reconstructed from the span stream alone.
//   phillyctl report [--days N] [--seed S] [options]
//       Run a simulation and print the full analysis without writing files.
//   phillyctl sweep [--days N] [--seeds S1,S2,...] [--schedulers a,b,...]
//                   [--retries p1,p2,...] [--threads N] [options]
//       Run the schedulers x retry-policies x seeds cross product through the
//       parallel experiment pool and print one summary row per run.
//       --retries defaults to the single --retry value; --threads overrides
//       the pool size (default: PHILLY_BENCH_THREADS or hardware
//       concurrency); results are identical for any thread count.
//   phillyctl fleet [--clusters SPEC] [--router POLICY]
//                   [--spill-threshold N] [--days N] [--seed S] [--threads N]
//                   [--out DIR] [--html FILE]
//       Run a multi-cluster fleet behind the front-door job router
//       (docs/fleet.md) and print a per-cluster routing/queueing summary.
//       --clusters is either a count ("4": four paper-scale clusters) or a
//       comma list of RxS / RxSxG topologies ("15x16x8,4x24x2"); each
//       member's workload is scaled to its GPU capacity. --router is pinned,
//       least-loaded, or spillover (default pinned); --spill-threshold (home
//       queue depth, spillover only) defaults to 4. --out writes the fleet
//       route stream, every per-cluster event and telemetry stream, and a
//       manifest.json recording the knobs; --html renders the dashboard with
//       a fleet routing section.
//
//   Scheduler options (simulate/report; sweep takes all but --scheduler):
//     --scheduler philly|fifo|optimus|tiresias|gandiva   (default philly)
//     --retry fixed|adaptive|predictive                  (default fixed)
//     --prerun            enable the 1-GPU pre-run pool (§5)
//     --migration         enable checkpoint-migration defragmentation (§5)
//     --dedicated         place small jobs on dedicated servers (§5)
//     --strict-locality   never relax locality constraints
//     --faults            enable the calibrated machine-fault process
//                         (node crashes, GPU ECC drains, rack outages)
//     --checkpoint-mins N periodic-checkpoint period for machine-fault
//                         recovery (default 0 = restart from scratch)
//     --ckpt-policy fixed|daly|stagger  checkpoint scheduling policy when the
//                         I/O model is on (default fixed)
//     --ckpt-bw GBPS      per-rack shared checkpoint storage bandwidth in
//                         GB/s; > 0 enables the checkpoint I/O interference
//                         model (default 0 = free instantaneous checkpoints)
//     --ckpt-size-gb-per-gpu GB  checkpoint bytes written per allocated GPU
//                         (default 2.0; requires --ckpt-bw to take effect)
//   Output options (simulate):
//     --format native|philly-traces|both                 (default native)
//   Observability options (simulate/report):
//     --events-out FILE    write the scheduler event stream as NDJSON
//     --metrics-out FILE   write aggregated run metrics as JSON
//     --trace-out FILE     write wall-clock phase slices as Chrome trace-event
//                          JSON (load in ui.perfetto.dev or chrome://tracing)
//     --telemetry-out FILE write the per-minute cluster telemetry stream as
//                          NDJSON with a trailing integrity digest line
//     --spans-out FILE     write the causal span stream (queued/blame/running/
//                          ckpt spans, docs/observability.md) as NDJSON
//     --spans-trace-out FILE  write the span tree as Chrome trace-event JSON
//                          (load in ui.perfetto.dev or chrome://tracing)
//     --html FILE          render a self-contained HTML dashboard (inline SVG,
//                          no external assets) from the run's log streams;
//                          includes a "Why jobs waited" section when a span
//                          sink is attached (--spans-out / --spans-trace-out)
//   Input options (analyze / explain):
//     --philly-traces     treat --trace as the public-release layout and
//                         parse cluster_job_log (telemetry analyses skipped)
//     --from-events FILE  analyze an NDJSON scheduler event log
//     --telemetry FILE    verify and summarize an NDJSON telemetry stream
//     --spans FILE        an NDJSON causal span stream (with analyze
//                         --from-events: verify + cross-check; with explain:
//                         the stream to reconstruct the timeline from)
//   Fleet options (fleet):
//     --collect-spans     collect per-cluster span streams; with --out each
//                         is written as <cluster>.spans.ndjson, and --html
//                         gains the "Why jobs waited" section

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/sha256.h"
#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/core/analysis.h"
#include "src/core/event_join.h"
#include "src/core/experiment.h"
#include "src/core/html_report.h"
#include "src/core/runner.h"
#include "src/core/report.h"
#include "src/core/span_analysis.h"
#include "src/core/validate.h"
#include "src/fault/checkpoint_io.h"
#include "src/fleet/fleet.h"
#include "src/fault/fault_process.h"
#include "src/obs/event_log.h"
#include "src/obs/manifest.h"
#include "src/obs/metrics.h"
#include "src/obs/observability.h"
#include "src/obs/rollup.h"
#include "src/obs/span.h"
#include "src/obs/timeseries.h"
#include "src/obs/trace_profiler.h"
#include "src/trace/philly_format.h"
#include "src/trace/trace_io.h"

namespace philly {
namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> values;
  std::map<std::string, bool> flags;

  std::string Get(const std::string& key, const std::string& fallback) const {
    const auto it = values.find(key);
    return it != values.end() ? it->second : fallback;
  }
  int GetInt(const std::string& key, int fallback) const {
    const auto it = values.find(key);
    return it != values.end() ? std::atoi(it->second.c_str()) : fallback;
  }
  bool Has(const std::string& key) const { return flags.count(key) > 0; }
};

Args Parse(int argc, char** argv) {
  Args args;
  if (argc >= 2 && argv[1][0] != '-') {
    args.command = argv[1];
  }
  static const char* kValueKeys[] = {"--days",    "--seed",       "--out",
                                     "--trace",   "--figures",    "--scheduler",
                                     "--retry",   "--format",     "--seeds",
                                     "--schedulers", "--threads", "--retries",
                                     "--checkpoint-mins", "--ckpt-policy",
                                     "--ckpt-bw", "--ckpt-size-gb-per-gpu",
                                     "--events-out",
                                     "--metrics-out", "--trace-out",
                                     "--from-events", "--telemetry-out",
                                     "--telemetry", "--html",
                                     "--spans-out", "--spans-trace-out",
                                     "--spans", "--job",
                                     "--clusters", "--router",
                                     "--spill-threshold"};
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    bool takes_value = false;
    for (const char* key : kValueKeys) {
      if (arg == key) {
        takes_value = true;
        break;
      }
    }
    if (takes_value && i + 1 < argc) {
      args.values[arg] = argv[++i];
    } else if (arg.rfind("--", 0) == 0) {
      args.flags[arg] = true;
    }
  }
  return args;
}

int Usage() {
  std::fprintf(stderr,
               "usage: phillyctl <simulate|analyze|report|sweep|fleet|explain> "
               "[options]\n"
               "see the header of tools/phillyctl.cc or README.md for the "
               "option list\n");
  return 2;
}

bool SchedulerByName(const std::string& name, SchedulerConfig* sched) {
  if (name == "philly") {
    *sched = SchedulerConfig::Philly();
  } else if (name == "fifo") {
    *sched = SchedulerConfig::Fifo();
  } else if (name == "optimus") {
    *sched = SchedulerConfig::Optimus();
  } else if (name == "tiresias") {
    *sched = SchedulerConfig::Tiresias();
  } else if (name == "gandiva") {
    *sched = SchedulerConfig::Gandiva();
  } else {
    std::fprintf(stderr, "unknown scheduler '%s'\n", name.c_str());
    return false;
  }
  return true;
}

bool RetryByName(const std::string& name, SchedulerConfig::RetryPolicyKind* kind) {
  if (name == "fixed") {
    *kind = SchedulerConfig::RetryPolicyKind::kFixed;
  } else if (name == "adaptive") {
    *kind = SchedulerConfig::RetryPolicyKind::kAdaptive;
  } else if (name == "predictive") {
    *kind = SchedulerConfig::RetryPolicyKind::kPredictive;
  } else {
    std::fprintf(stderr, "unknown retry policy '%s'\n", name.c_str());
    return false;
  }
  return true;
}

// Applies the options shared by every subcommand (retry policy and the §5
// mechanism flags) on top of an already-selected scheduler preset.
bool ApplyCommonSchedulerOptions(const Args& args, SchedulerConfig* sched) {
  if (!RetryByName(args.Get("--retry", "fixed"), &sched->retry_policy)) {
    return false;
  }
  sched->enable_prerun_pool = args.Has("--prerun");
  sched->enable_migration = args.Has("--migration");
  if (args.Has("--dedicated")) {
    sched->placer.pack_small_jobs = false;
  }
  if (args.Has("--strict-locality")) {
    sched->max_relax_level = 0;
  }
  return true;
}

bool ApplySchedulerOptions(const Args& args, SchedulerConfig* sched) {
  return SchedulerByName(args.Get("--scheduler", "philly"), sched) &&
         ApplyCommonSchedulerOptions(args, sched);
}

// Strict numeric parsing for the fault/checkpoint knobs. std::atoi-style
// silent defaulting would let a typo'd period or bandwidth invalidate a whole
// fault study, so malformed values fail loudly instead (the same contract as
// the PHILLY_BENCH_* env knobs).
bool ParseStrictLong(const std::string& text, long* out) {
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') {
    return false;
  }
  *out = value;
  return true;
}

bool ParseStrictDouble(const std::string& text, double* out) {
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text.c_str(), &end);
  if (errno != 0 || end == text.c_str() || *end != '\0' ||
      !std::isfinite(value)) {
    return false;
  }
  *out = value;
  return true;
}

// Parses and validates --checkpoint-mins and the --ckpt-* knobs into the
// scheduler config (period, policy) and the checkpoint I/O config (bandwidth,
// write size). Returns 0 on success; on an invalid value prints a clear
// message and returns 1, which the caller propagates as the process exit
// code.
int ApplyCheckpointOptions(const Args& args, SchedulerConfig* sched,
                           CheckpointIoConfig* ckpt_io) {
  if (args.values.count("--checkpoint-mins") > 0) {
    const std::string text = args.Get("--checkpoint-mins", "");
    long mins = 0;
    if (!ParseStrictLong(text, &mins) || mins < 0) {
      std::fprintf(stderr,
                   "--checkpoint-mins '%s' is invalid: expected a "
                   "non-negative integer number of minutes (0 disables "
                   "periodic checkpoints)\n",
                   text.c_str());
      return 1;
    }
    sched->checkpoint_period = Minutes(static_cast<int>(mins));
  }
  if (args.values.count("--ckpt-policy") > 0) {
    const std::string name = args.Get("--ckpt-policy", "");
    if (name == "fixed") {
      sched->checkpoint_policy = CheckpointPolicy::kFixedPeriod;
    } else if (name == "daly") {
      sched->checkpoint_policy = CheckpointPolicy::kDalyOptimal;
    } else if (name == "stagger") {
      sched->checkpoint_policy = CheckpointPolicy::kCooperativeStagger;
    } else {
      std::fprintf(stderr,
                   "--ckpt-policy '%s' is invalid: expected fixed, daly, or "
                   "stagger\n",
                   name.c_str());
      return 1;
    }
  }
  if (args.values.count("--ckpt-bw") > 0) {
    const std::string text = args.Get("--ckpt-bw", "");
    double bw = 0.0;
    if (!ParseStrictDouble(text, &bw) || bw <= 0.0) {
      std::fprintf(stderr,
                   "--ckpt-bw '%s' is invalid: expected a positive per-rack "
                   "bandwidth in GB/s\n",
                   text.c_str());
      return 1;
    }
    ckpt_io->rack_bandwidth_gbps = bw;
  }
  if (args.values.count("--ckpt-size-gb-per-gpu") > 0) {
    const std::string text = args.Get("--ckpt-size-gb-per-gpu", "");
    double size = 0.0;
    if (!ParseStrictDouble(text, &size) || size <= 0.0) {
      std::fprintf(stderr,
                   "--ckpt-size-gb-per-gpu '%s' is invalid: expected a "
                   "positive write size in GB per allocated GPU\n",
                   text.c_str());
      return 1;
    }
    ckpt_io->size_gb_per_gpu = size;
  }
  return 0;
}

// Report sections shared by `report`, `analyze --trace`, and
// `analyze --from-events`. The first four consume only the scheduler stream
// (JobRecord scheduling fields + counters), so an event-log join can
// reproduce them without telemetry or framework logs.

void PrintStatusSection(const std::vector<JobRecord>& jobs) {
  const auto status = AnalyzeStatus(jobs);
  std::printf("=== Table 6: job status vs GPU time ===\n");
  TextTable status_table({"status", "count", "count share", "GPU-time share"});
  for (int s = 0; s < 3; ++s) {
    const auto& row = status.by_status[static_cast<size_t>(s)];
    status_table.AddRow({std::string(ToString(static_cast<JobStatus>(s))),
                         std::to_string(row.count), FormatPercent(row.count_share, 1),
                         FormatPercent(row.gpu_time_share, 1)});
  }
  std::printf("%s\n", status_table.Render().c_str());
}

void PrintRunTimeSection(const std::vector<JobRecord>& jobs) {
  const auto runtimes = AnalyzeRunTimes(jobs);
  std::printf("=== Figure 2: run times ===\n");
  TextTable rt_table({"bucket", "n", "median (min)", "p90 (min)", "p99 (min)"});
  for (int b = 0; b < kNumSizeBuckets; ++b) {
    const auto& hist = runtimes.cdf_minutes[static_cast<size_t>(b)];
    rt_table.AddRow({std::string(ToString(static_cast<SizeBucket>(b))),
                     FormatDouble(hist.Count(), 0), FormatDouble(hist.Median(), 1),
                     FormatDouble(hist.Quantile(0.9), 1),
                     FormatDouble(hist.Quantile(0.99), 1)});
  }
  std::printf("%s  jobs over one week: %s\n\n", rt_table.Render().c_str(),
              FormatPercent(runtimes.fraction_over_one_week, 2).c_str());
}

void PrintQueueDelaySection(const std::vector<JobRecord>& jobs) {
  const auto delays = AnalyzeQueueDelays(jobs);
  std::printf("=== Figure 3: queueing delay ===\n");
  TextTable d_table({"bucket", "P(<=1min)", "P(<=10min)", "p90 (min)", "p99 (min)"});
  for (int b = 0; b < kNumSizeBuckets; ++b) {
    const auto& hist = delays.overall[static_cast<size_t>(b)];
    d_table.AddRow({std::string(ToString(static_cast<SizeBucket>(b))),
                    FormatPercent(hist.CdfAt(1.0), 1), FormatPercent(hist.CdfAt(10.0), 1),
                    FormatDouble(hist.Quantile(0.9), 2),
                    FormatDouble(hist.Quantile(0.99), 2)});
  }
  std::printf("%s\n", d_table.Render().c_str());
}

void PrintDelayCauseSection(const std::vector<JobRecord>& jobs,
                            const SimulationResult* sim) {
  const auto causes = AnalyzeDelayCauses(jobs, sim);
  std::printf("=== Table 2: delay causes ===\n");
  TextTable c_table({"bucket", "fair-share", "fragmentation"});
  for (int b = 1; b < kNumSizeBuckets; ++b) {
    const auto& row = causes.by_bucket[static_cast<size_t>(b)];
    c_table.AddRow({std::string(ToString(static_cast<SizeBucket>(b))),
                    std::to_string(row.fair_share), std::to_string(row.fragmentation)});
  }
  std::printf("%swaiting time: %s fragmentation / %s fair-share\n",
              c_table.Render().c_str(),
              FormatPercent(causes.fragmentation_time_fraction, 1).c_str(),
              FormatPercent(causes.fair_share_time_fraction, 1).c_str());
  if (sim != nullptr) {
    std::printf("out-of-order: %s of decisions, %s benign; preemptions %lld; "
                "migrations %lld\n",
                FormatPercent(causes.out_of_order_fraction, 1).c_str(),
                FormatPercent(causes.out_of_order_benign_fraction, 1).c_str(),
                static_cast<long long>(sim->preemptions),
                static_cast<long long>(sim->migrations));
  }
  std::printf("\n");
}

void PrintReport(const std::vector<JobRecord>& jobs, const SimulationResult* sim) {
  PrintStatusSection(jobs);
  PrintRunTimeSection(jobs);
  PrintQueueDelaySection(jobs);
  PrintDelayCauseSection(jobs, sim);

  const auto util = AnalyzeUtilization(jobs);
  std::printf("=== Figure 5 / Table 3: GPU utilization ===\n");
  TextTable u_table({"size", "mean util (%)", "p50", "p90"});
  for (int i = 0; i < UtilizationResult::kNumRepresentative; ++i) {
    const auto& hist = util.by_size[static_cast<size_t>(i)];
    u_table.AddRow({std::to_string(kRepresentativeSizes[i]) + " GPU",
                    FormatDouble(hist.Mean(), 1), FormatDouble(hist.Median(), 1),
                    FormatDouble(hist.Quantile(0.9), 1)});
  }
  std::printf("%soverall mean: %.1f%%\n\n", u_table.Render().c_str(),
              util.all.Mean());

  const auto failures = AnalyzeFailures(jobs);
  std::printf("=== Table 7: failures (top 10 by trials) ===\n");
  std::vector<const FailureAnalysisResult::ReasonRow*> rows;
  for (const auto& row : failures.rows) {
    if (row.trials > 0) {
      rows.push_back(&row);
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto* a, const auto* b) { return a->trials > b->trials; });
  TextTable f_table({"reason", "trials", "jobs", "users", "RTF p50 (min)", "RTF share"});
  for (size_t i = 0; i < rows.size() && i < 10; ++i) {
    f_table.AddRow({std::string(ToString(rows[i]->reason)),
                    std::to_string(rows[i]->trials), std::to_string(rows[i]->jobs),
                    std::to_string(rows[i]->users),
                    FormatDouble(rows[i]->rtf_p50_min, 2),
                    FormatPercent(rows[i]->rtf_total_share, 1)});
  }
  std::printf("%stotal trials %lld; unsuccessful rate %s; mean retries %.3f\n",
              f_table.Render().c_str(), static_cast<long long>(failures.total_trials),
              FormatPercent(failures.unsuccessful_rate_all, 1).c_str(),
              failures.mean_retries_all);

  if (sim != nullptr && sim->machine_faults_injected > 0) {
    std::printf(
        "\n=== Machine faults ===\n"
        "%lld fault events; %lld server-downs; %lld attempts killed; "
        "%.1f GPU-hours lost\n",
        static_cast<long long>(sim->machine_faults_injected),
        static_cast<long long>(sim->machine_fault_server_downs),
        static_cast<long long>(sim->machine_fault_kills),
        sim->machine_fault_lost_gpu_seconds / 3600.0);
  }
  if (sim != nullptr && sim->ckpt_writes_started > 0) {
    std::printf(
        "\n=== Checkpoint I/O ===\n"
        "%lld writes started (%lld completed, %lld interrupted); "
        "%.1f GPU-hours overhead; %.1f GPU-hours stalled on contention\n",
        static_cast<long long>(sim->ckpt_writes_started),
        static_cast<long long>(sim->ckpt_writes_completed),
        static_cast<long long>(sim->ckpt_writes_interrupted),
        sim->ckpt_overhead_gpu_seconds / 3600.0,
        sim->ckpt_stall_gpu_seconds / 3600.0);
  }
}

// The subset of the report a scheduler event log can reproduce on its own.
// Utilization, failure, and host-resource tables need the telemetry and
// framework streams, which the event stream deliberately does not carry.
void PrintEventReport(const SimulationResult& joined) {
  PrintStatusSection(joined.jobs);
  PrintRunTimeSection(joined.jobs);
  PrintQueueDelaySection(joined.jobs);
  PrintDelayCauseSection(joined.jobs, &joined);
}

void ExportFigures(const std::vector<JobRecord>& jobs, const std::string& dir) {
  std::filesystem::create_directories(dir);
  const auto runtimes = AnalyzeRunTimes(jobs);
  const auto delays = AnalyzeQueueDelays(jobs);
  for (int b = 0; b < kNumSizeBuckets; ++b) {
    WriteCdfCsv(runtimes.cdf_minutes[static_cast<size_t>(b)],
                dir + "/fig2_runtime_bucket" + std::to_string(b) + ".csv");
    WriteCdfCsv(delays.overall[static_cast<size_t>(b)],
                dir + "/fig3_delay_bucket" + std::to_string(b) + ".csv");
  }
  const auto util = AnalyzeUtilization(jobs);
  for (int i = 0; i < UtilizationResult::kNumRepresentative; ++i) {
    WriteCdfCsv(util.by_size[static_cast<size_t>(i)],
                dir + "/fig5_util_" + std::to_string(kRepresentativeSizes[i]) +
                    "gpu.csv");
  }
  const auto host = AnalyzeHostResources(jobs);
  WriteCdfCsv(host.cpu_util, dir + "/fig7_cpu.csv");
  WriteCdfCsv(host.memory_util, dir + "/fig7_memory.csv");
  std::printf("figure series written to %s/\n", dir.c_str());
}

// Serializes `write(out)` into memory, writes the bytes to `path`, and on
// success records the sink in the manifest: output path plus the SHA-256 of
// exactly the bytes written, so a later reader can prove the file on disk is
// the one this run produced.
template <typename WriteFn>
bool WriteObsFile(const std::string& path, const char* what, const char* sink,
                  RunManifest* manifest, WriteFn write) {
  std::ostringstream buffer;
  write(buffer);
  const std::string bytes = buffer.str();
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s to %s\n", what, path.c_str());
    return false;
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out.good()) {
    std::fprintf(stderr, "error while writing %s to %s\n", what, path.c_str());
    return false;
  }
  manifest->outputs[sink] = path;
  manifest->digests[sink] = Sha256Hex(bytes);
  return true;
}

// The manifest that lets a trace directory found on disk later be
// regenerated: seed, scale, and every knob that changes the simulation.
RunManifest ManifestFor(const Args& args, const ExperimentConfig& config,
                        bool write_output) {
  RunManifest manifest;
  manifest.tool = "phillyctl";
  manifest.command = write_output ? "simulate" : "report";
  manifest.seed = config.simulation.seed;
  manifest.days = args.GetInt("--days", 10);
  manifest.threads = 1;
  manifest.knobs["scheduler"] = config.simulation.scheduler.name;
  manifest.knobs["retry"] = args.Get("--retry", "fixed");
  manifest.knobs["format"] = args.Get("--format", "native");
  manifest.knobs["faults"] = args.Has("--faults") ? "on" : "off";
  // The checkpoint knobs were already validated by ApplyCheckpointOptions, so
  // the raw strings can be recorded verbatim.
  for (const char* knob : {"--checkpoint-mins", "--ckpt-policy", "--ckpt-bw",
                           "--ckpt-size-gb-per-gpu"}) {
    if (args.values.count(knob) > 0) {
      manifest.knobs[knob + 2] = args.Get(knob, "");  // strip the dashes
    }
  }
  for (const char* flag :
       {"--prerun", "--migration", "--dedicated", "--strict-locality"}) {
    if (args.Has(flag)) {
      manifest.knobs[flag + 2] = "on";  // strip the leading dashes
    }
  }
  return manifest;
}

int RunSimulateOrReport(const Args& args, bool write_output) {
  ExperimentConfig config =
      ExperimentConfig::BenchScale(args.GetInt("--days", 10),
                                   static_cast<uint64_t>(args.GetInt("--seed", 42)));
  if (!ApplySchedulerOptions(args, &config.simulation.scheduler)) {
    return 2;
  }
  if (const int rc = ApplyCheckpointOptions(args, &config.simulation.scheduler,
                                            &config.simulation.ckpt_io);
      rc != 0) {
    return rc;
  }
  if (args.Has("--faults")) {
    config.simulation.fault = FaultProcessConfig::Calibrated();
  }

  // Observability sinks attach only when their output was requested: a run
  // without these flags keeps config.simulation.obs all-null and is
  // byte-identical to a run from before the sinks existed.
  EventLog event_log;
  MetricsRegistry metrics;
  TraceProfiler profiler;
  ClusterTimeSeries timeseries;
  SpanTracer spans;
  const std::string events_out = args.Get("--events-out", "");
  const std::string metrics_out = args.Get("--metrics-out", "");
  const std::string trace_out = args.Get("--trace-out", "");
  const std::string telemetry_out = args.Get("--telemetry-out", "");
  const std::string spans_out = args.Get("--spans-out", "");
  const std::string spans_trace_out = args.Get("--spans-trace-out", "");
  const std::string html_out = args.Get("--html", "");
  // The dashboard joins the telemetry and scheduler streams, so --html
  // implies both recorders even when their files were not asked for.
  if (!events_out.empty() || !html_out.empty()) {
    config.simulation.obs.event_log = &event_log;
  }
  if (!metrics_out.empty()) {
    config.simulation.obs.metrics = &metrics;
  }
  if (!trace_out.empty()) {
    config.simulation.obs.profiler = &profiler;
  }
  if (!telemetry_out.empty() || !html_out.empty()) {
    config.simulation.obs.timeseries = &timeseries;
  }
  // The span tracer attaches only on explicit request: with it attached the
  // telemetry stream grows per-VC blame columns, so quietly enabling it for
  // --html would change --telemetry-out bytes for users who never asked for
  // attribution.
  if (!spans_out.empty() || !spans_trace_out.empty()) {
    config.simulation.obs.spans = &spans;
  }

  std::printf("simulating %d days (seed %d, scheduler %s)...\n",
              args.GetInt("--days", 10), args.GetInt("--seed", 42),
              config.simulation.scheduler.name.c_str());
  const ExperimentRun run = RunExperiment(config);
  std::printf("%lld jobs completed\n\n", static_cast<long long>(run.num_jobs));

  RunManifest manifest = ManifestFor(args, config, write_output);
  if (write_output) {
    const std::string out = args.Get("--out", "out/trace");
    std::filesystem::create_directories(out);
    const std::string format = args.Get("--format", "native");
    if (format == "native" || format == "both") {
      if (!TraceWriter::WriteDirectory(run.result.jobs, out)) {
        std::fprintf(stderr, "cannot write native trace to %s\n", out.c_str());
        return 1;
      }
      manifest.outputs["trace"] = out;
      std::printf("native trace written to %s/\n", out.c_str());
    }
    if (format == "philly-traces" || format == "both") {
      PhillyTracesExporter exporter(config.simulation.cluster);
      if (!exporter.WriteDirectory(run.result.jobs, out)) {
        std::fprintf(stderr, "cannot write philly-traces files to %s\n", out.c_str());
        return 1;
      }
      manifest.outputs["philly-traces"] = out;
      std::printf("philly-traces-format files written to %s/\n", out.c_str());
    }
  }

  {
    // Scoped so the "analyze" slice closes before the trace file is written.
    ScopedTimer analyze_timer(config.simulation.obs.profiler, "analyze");
    PrintReport(run.result.jobs, &run.result);
    if (args.values.count("--figures") > 0) {
      ExportFigures(run.result.jobs, args.Get("--figures", "out/figures"));
    }
  }

  if (!events_out.empty()) {
    if (!WriteObsFile(events_out, "event log", "events", &manifest,
                      [&](std::ostream& out) { event_log.WriteNdjson(out); })) {
      return 1;
    }
    std::printf("%zu scheduler events written to %s\n", event_log.size(),
                events_out.c_str());
  }
  if (!metrics_out.empty()) {
    if (!WriteObsFile(metrics_out, "metrics", "metrics", &manifest,
                      [&](std::ostream& out) { metrics.WriteJson(out); })) {
      return 1;
    }
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    if (!WriteObsFile(trace_out, "phase trace", "phase-trace", &manifest,
                      [&](std::ostream& out) { profiler.WriteChromeTrace(out); })) {
      return 1;
    }
    std::printf("%zu phase slices written to %s (open in ui.perfetto.dev)\n",
                profiler.size(), trace_out.c_str());
  }
  if (!telemetry_out.empty()) {
    // The embedded digest carries both halves of the cross-check: exact
    // aggregates over the sample lines, and the Table 3 utilization
    // aggregates derived from the native job records.
    TelemetryDigest digest = DigestOfSamples(timeseries.samples());
    const TelemetryDigest jobs_half = ComputeUtilDigest(run.result.jobs);
    digest.jobs = jobs_half.jobs;
    digest.segments = jobs_half.segments;
    digest.util_weight = jobs_half.util_weight;
    digest.util_weighted_sum = jobs_half.util_weighted_sum;
    if (!WriteObsFile(telemetry_out, "telemetry", "telemetry", &manifest,
                      [&](std::ostream& out) {
                        timeseries.WriteNdjson(out, &digest);
                      })) {
      return 1;
    }
    std::printf("%zu telemetry samples written to %s\n",
                timeseries.samples().size(), telemetry_out.c_str());
  }
  if (!spans_out.empty()) {
    if (!WriteObsFile(spans_out, "span stream", "spans", &manifest,
                      [&](std::ostream& out) { spans.log().WriteNdjson(out); })) {
      return 1;
    }
    std::printf("%zu causal spans written to %s\n", spans.log().spans().size(),
                spans_out.c_str());
  }
  if (!spans_trace_out.empty()) {
    if (!WriteObsFile(spans_trace_out, "span trace", "spans-trace", &manifest,
                      [&](std::ostream& out) {
                        WriteSpanChromeTrace(out, spans.log().spans());
                      })) {
      return 1;
    }
    std::printf("span trace written to %s (open in ui.perfetto.dev)\n",
                spans_trace_out.c_str());
  }
  if (!html_out.empty()) {
    HtmlDashboardInput dashboard;
    dashboard.title = "philly " + config.simulation.scheduler.name + " seed " +
                      std::to_string(config.simulation.seed) + ", " +
                      std::to_string(args.GetInt("--days", 10)) + " days";
    dashboard.samples = &timeseries.samples();
    dashboard.events = &event_log.events();
    dashboard.jobs = &run.result.jobs;
    if (config.simulation.obs.spans != nullptr) {
      dashboard.spans = &spans.log().spans();
    }
    if (!WriteObsFile(html_out, "dashboard", "dashboard", &manifest,
                      [&](std::ostream& out) {
                        out << RenderHtmlDashboard(dashboard);
                      })) {
      return 1;
    }
    std::printf("dashboard written to %s\n", html_out.c_str());
  }
  if (write_output) {
    const std::string manifest_path = args.Get("--out", "out/trace") +
                                      "/manifest.json";
    if (!manifest.WriteFile(manifest_path)) {
      std::fprintf(stderr, "cannot write %s\n", manifest_path.c_str());
      return 1;
    }
    std::printf("manifest written to %s\n", manifest_path.c_str());
  }
  return 0;
}

// Compares the event-rebuilt jobs against a native trace, field by field,
// for every number both sources claim to know. Returns the mismatch count
// (printing the first few).
int CrossCheckAgainstTrace(const std::vector<JobRecord>& joined,
                           const std::vector<JobRecord>& native) {
  std::map<JobId, const JobRecord*> by_id;
  for (const JobRecord& job : native) {
    by_id[job.spec.id] = &job;
  }
  int mismatches = 0;
  const auto report = [&](JobId id, const char* field, double from_events,
                          double from_trace) {
    ++mismatches;
    if (mismatches <= 10) {
      std::fprintf(stderr,
                   "cross-check mismatch: job %lld %s: events say %g, "
                   "trace says %g\n",
                   static_cast<long long>(id), field, from_events, from_trace);
    }
  };
  if (joined.size() != native.size()) {
    std::fprintf(stderr, "cross-check mismatch: %zu jobs from events vs %zu "
                 "in the trace\n", joined.size(), native.size());
    ++mismatches;
  }
  for (const JobRecord& job : joined) {
    const auto it = by_id.find(job.spec.id);
    if (it == by_id.end()) {
      report(job.spec.id, "presence", 1, 0);
      continue;
    }
    const JobRecord& ref = *it->second;
    if (job.spec.vc != ref.spec.vc) {
      report(job.spec.id, "vc", job.spec.vc, ref.spec.vc);
    }
    if (job.spec.num_gpus != ref.spec.num_gpus) {
      report(job.spec.id, "num_gpus", job.spec.num_gpus, ref.spec.num_gpus);
    }
    if (job.spec.submit_time != ref.spec.submit_time) {
      report(job.spec.id, "submit_time",
             static_cast<double>(job.spec.submit_time),
             static_cast<double>(ref.spec.submit_time));
    }
    if (job.InitialQueueDelay() != ref.InitialQueueDelay()) {
      report(job.spec.id, "initial queue delay",
             static_cast<double>(job.InitialQueueDelay()),
             static_cast<double>(ref.InitialQueueDelay()));
    }
    if (job.attempts.size() != ref.attempts.size()) {
      report(job.spec.id, "attempt count",
             static_cast<double>(job.attempts.size()),
             static_cast<double>(ref.attempts.size()));
    }
    if (job.status != ref.status) {
      report(job.spec.id, "status", static_cast<int>(job.status),
             static_cast<int>(ref.status));
    }
    if (job.finish_time != ref.finish_time) {
      report(job.spec.id, "finish_time", static_cast<double>(job.finish_time),
             static_cast<double>(ref.finish_time));
    }
  }
  if (mismatches > 10) {
    std::fprintf(stderr, "... and %d more mismatches\n", mismatches - 10);
  }
  return mismatches;
}

// `analyze --from-events FILE [--trace DIR]`: rebuild the scheduler-stream
// analyses from the NDJSON event log alone; with --trace, also verify the
// rebuilt records against the native trace (the round-trip check the CI
// smoke job runs).
int RunAnalyzeFromEvents(const Args& args) {
  const std::string path = args.Get("--from-events", "");
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open event log %s\n", path.c_str());
    return 1;
  }
  std::string error;
  const std::vector<SchedEvent> events = EventLog::ReadNdjson(in, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "failed to parse %s: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  const SimulationResult joined = JoinSchedulerEvents(events, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "inconsistent event stream in %s: %s\n", path.c_str(),
                 error.c_str());
    return 1;
  }
  std::printf("rebuilt %zu jobs from %zu scheduler events in %s\n\n",
              joined.jobs.size(), events.size(), path.c_str());
  PrintEventReport(joined);

  const std::string spans_path = args.Get("--spans", "");
  if (!spans_path.empty()) {
    std::ifstream spans_in(spans_path);
    if (!spans_in) {
      std::fprintf(stderr, "cannot open span stream %s\n", spans_path.c_str());
      return 1;
    }
    const std::vector<SpanRecord> spans =
        SpanLog::ReadNdjson(spans_in, &error);
    if (!error.empty()) {
      std::fprintf(stderr, "failed to parse %s: %s\n", spans_path.c_str(),
                   error.c_str());
      return 1;
    }
    // First the conservation identity: every second a job measurably waited
    // is attributed to exactly one blame span, and the fairness/fragmentation
    // subtotals match the native per-wait attribution.
    if (!VerifyBlameConservation(spans, joined.jobs, &error)) {
      std::fprintf(stderr, "blame-conservation check failed for %s: %s\n",
                   spans_path.c_str(), error.c_str());
      return 1;
    }
    std::printf("blame conservation verified: %zu spans account for every "
                "waited second of %zu jobs\n",
                spans.size(), joined.jobs.size());
    // Then Table 2 rebuilt from the attributed spans alone must equal the
    // native analysis, exactly.
    const DelayCauseResult native = AnalyzeDelayCauses(joined.jobs, nullptr);
    const DelayCauseResult from_spans = DelayCausesFromSpans(spans);
    if (!CrossCheckDelayCauses(native, from_spans, &error)) {
      std::fprintf(stderr,
                   "span-rebuilt Table 2 disagrees with the native analysis: "
                   "%s\n",
                   error.c_str());
      return 1;
    }
    std::printf("cross-check passed: Table 2 rebuilt from attributed spans "
                "matches the native analysis\n");
  }

  const std::string dir = args.Get("--trace", "");
  if (!dir.empty()) {
    std::ifstream jobs_csv(dir + "/jobs.csv");
    std::ifstream attempts_csv(dir + "/attempts.csv");
    std::ifstream util_csv(dir + "/gpu_util.csv");
    std::ifstream stdout_log(dir + "/stdout.log");
    if (!jobs_csv || !attempts_csv || !util_csv || !stdout_log) {
      std::fprintf(stderr, "cannot open native trace files under %s\n",
                   dir.c_str());
      return 1;
    }
    const auto native =
        TraceReader::ReadJobs(jobs_csv, attempts_csv, util_csv, stdout_log);
    const int mismatches = CrossCheckAgainstTrace(joined.jobs, native);
    if (mismatches > 0) {
      std::fprintf(stderr,
                   "event log and native trace disagree (%d mismatches)\n",
                   mismatches);
      return 1;
    }
    std::printf("cross-check passed: %zu jobs agree with the native trace\n",
                native.size());
  }
  return 0;
}

// `analyze --telemetry FILE [--trace DIR]`: verify a telemetry stream
// against its embedded digest and summarize it. The sample-derived half is
// recomputed from the stream itself (self-integrity: any edited line flips
// it); with --trace the job-derived Table 3 half is recomputed from the
// native trace with the same code path the writer used, so both checks are
// exact, not within-epsilon.
int RunAnalyzeTelemetry(const Args& args) {
  const std::string path = args.Get("--telemetry", "");
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open telemetry stream %s\n", path.c_str());
    return 1;
  }
  TelemetryDigest written;
  bool found_digest = false;
  std::string error;
  const std::vector<TelemetrySample> samples =
      ClusterTimeSeries::ReadNdjson(in, &written, &found_digest, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "failed to parse %s: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  std::printf("read %zu telemetry samples from %s\n", samples.size(),
              path.c_str());
  if (!found_digest) {
    std::fprintf(stderr, "%s carries no digest line; cannot verify\n",
                 path.c_str());
    return 1;
  }

  const TelemetryDigest recomputed = DigestOfSamples(samples);
  if (!SampleAggregatesEqual(recomputed, written)) {
    std::fprintf(stderr,
                 "sample digest mismatch: stream says samples=%lld "
                 "used_gpu_samples=%lld occ_sum=%.17g util_obs_sum=%.17g, "
                 "recomputed samples=%lld used_gpu_samples=%lld occ_sum=%.17g "
                 "util_obs_sum=%.17g\n",
                 static_cast<long long>(written.samples),
                 static_cast<long long>(written.used_gpu_samples),
                 written.occupancy_sum, written.util_observed_sum,
                 static_cast<long long>(recomputed.samples),
                 static_cast<long long>(recomputed.used_gpu_samples),
                 recomputed.occupancy_sum, recomputed.util_observed_sum);
    return 1;
  }
  std::printf("sample aggregates verified against the embedded digest\n");

  // Table 3 aggregate means, rebuilt from the digest the writer derived.
  std::printf("\n=== Table 3 utilization aggregates (from telemetry) ===\n");
  TextTable table({"class", "weight", "mean util (%)"});
  static const char* kClassNames[TelemetryDigest::kNumClasses] = {
      "1 GPU", "4 GPU", "8 GPU", "16 GPU", "all"};
  for (int c = 0; c < TelemetryDigest::kNumClasses; ++c) {
    const double weight = written.util_weight[static_cast<size_t>(c)];
    const double mean =
        weight > 0.0
            ? written.util_weighted_sum[static_cast<size_t>(c)] / weight
            : 0.0;
    table.AddRow({kClassNames[c], FormatDouble(weight, 0),
                  FormatDouble(mean, 2)});
  }
  std::printf("%s\n", table.Render().c_str());

  const std::string dir = args.Get("--trace", "");
  if (!dir.empty()) {
    std::ifstream jobs_csv(dir + "/jobs.csv");
    std::ifstream attempts_csv(dir + "/attempts.csv");
    std::ifstream util_csv(dir + "/gpu_util.csv");
    std::ifstream stdout_log(dir + "/stdout.log");
    if (!jobs_csv || !attempts_csv || !util_csv || !stdout_log) {
      std::fprintf(stderr, "cannot open native trace files under %s\n",
                   dir.c_str());
      return 1;
    }
    const auto native =
        TraceReader::ReadJobs(jobs_csv, attempts_csv, util_csv, stdout_log);
    const TelemetryDigest from_trace = ComputeUtilDigest(native);
    if (!JobAggregatesEqual(from_trace, written)) {
      std::fprintf(stderr,
                   "utilization digest mismatch: stream says jobs=%lld "
                   "segments=%lld overall wsum=%.17g, trace says jobs=%lld "
                   "segments=%lld overall wsum=%.17g\n",
                   static_cast<long long>(written.jobs),
                   static_cast<long long>(written.segments),
                   written.util_weighted_sum[TelemetryDigest::kOverallClass],
                   static_cast<long long>(from_trace.jobs),
                   static_cast<long long>(from_trace.segments),
                   from_trace.util_weighted_sum[TelemetryDigest::kOverallClass]);
      return 1;
    }
    std::printf("cross-check passed: utilization aggregates match the native "
                "trace (%zu jobs)\n", native.size());
  }
  return 0;
}

int RunAnalyze(const Args& args) {
  if (args.values.count("--telemetry") > 0) {
    return RunAnalyzeTelemetry(args);
  }
  if (args.values.count("--from-events") > 0) {
    return RunAnalyzeFromEvents(args);
  }
  const std::string dir = args.Get("--trace", "");
  if (dir.empty()) {
    std::fprintf(stderr, "analyze requires --trace DIR\n");
    return 2;
  }
  if (args.Has("--philly-traces")) {
    // Public-release layout: parse cluster_job_log. Telemetry-dependent
    // analyses are skipped (the job log carries no utilization).
    std::ifstream job_log(dir + "/cluster_job_log");
    if (!job_log) {
      std::fprintf(stderr, "cannot open %s/cluster_job_log\n", dir.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << job_log.rdbuf();
    PhillyTracesImporter importer;
    std::string error;
    const auto jobs = importer.ImportJobLog(buffer.str(), &error);
    if (!error.empty()) {
      std::fprintf(stderr, "failed to parse cluster_job_log: %s\n", error.c_str());
      return 1;
    }
    std::printf("imported %zu jobs (%d VCs, %d users, %d machines) from %s\n\n",
                jobs.size(), importer.num_vcs(), importer.num_users(),
                importer.num_machines(), dir.c_str());
    PrintReport(jobs, nullptr);
    if (args.values.count("--figures") > 0) {
      ExportFigures(jobs, args.Get("--figures", "out/figures"));
    }
    return 0;
  }
  std::ifstream jobs_csv(dir + "/jobs.csv");
  std::ifstream attempts_csv(dir + "/attempts.csv");
  std::ifstream util_csv(dir + "/gpu_util.csv");
  std::ifstream stdout_log(dir + "/stdout.log");
  if (!jobs_csv || !attempts_csv || !util_csv || !stdout_log) {
    std::fprintf(stderr, "cannot open native trace files under %s\n", dir.c_str());
    return 1;
  }
  const auto jobs =
      TraceReader::ReadJobs(jobs_csv, attempts_csv, util_csv, stdout_log);
  const ValidationReport validation = ValidateJobs(jobs);
  if (!validation.ok()) {
    std::fprintf(stderr, "trace failed validation: %s\n",
                 validation.Summary().c_str());
    return 1;
  }
  std::printf("loaded and validated %zu jobs from %s\n\n", jobs.size(),
              dir.c_str());
  PrintReport(jobs, nullptr);
  if (args.values.count("--figures") > 0) {
    ExportFigures(jobs, args.Get("--figures", "out/figures"));
  }
  return 0;
}

std::vector<std::string> SplitCsv(const std::string& list) {
  std::vector<std::string> out;
  std::string item;
  std::stringstream stream(list);
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) {
      out.push_back(item);
    }
  }
  return out;
}

// Runs the schedulers x retry-policies x seeds cross product through the
// experiment pool and prints one summary row per run. Rows come out in
// (scheduler, retry, seed) order no matter how many worker threads execute
// the simulations.
int RunSweep(const Args& args) {
  std::vector<uint64_t> seeds;
  for (const std::string& token : SplitCsv(args.Get("--seeds", "42"))) {
    char* end = nullptr;
    errno = 0;
    const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
    if (errno != 0 || end == token.c_str() || *end != '\0') {
      std::fprintf(stderr, "--seeds entry '%s' is not a valid seed\n",
                   token.c_str());
      return 2;
    }
    seeds.push_back(static_cast<uint64_t>(value));
  }
  const std::vector<std::string> scheduler_names =
      SplitCsv(args.Get("--schedulers", "philly"));
  // Third sweep dimension: retry policies. Defaults to the single --retry
  // value so `sweep --retry adaptive` keeps working unchanged.
  const std::vector<std::string> retry_names =
      SplitCsv(args.Get("--retries", args.Get("--retry", "fixed")));
  if (seeds.empty() || scheduler_names.empty() || retry_names.empty()) {
    std::fprintf(stderr,
                 "sweep needs at least one seed, one scheduler, and one "
                 "retry policy\n");
    return 2;
  }

  const int days = args.GetInt("--days", 10);
  std::vector<ExperimentConfig> configs;
  for (const std::string& name : scheduler_names) {
    SchedulerConfig sched;
    CheckpointIoConfig ckpt_io;
    if (!SchedulerByName(name, &sched) ||
        !ApplyCommonSchedulerOptions(args, &sched)) {
      return 2;
    }
    if (const int rc = ApplyCheckpointOptions(args, &sched, &ckpt_io);
        rc != 0) {
      return rc;
    }
    for (const std::string& retry : retry_names) {
      SchedulerConfig variant = sched;
      if (!RetryByName(retry, &variant.retry_policy)) {
        return 2;
      }
      for (const uint64_t seed : seeds) {
        ExperimentConfig config = ExperimentConfig::BenchScale(days, seed);
        config.simulation.scheduler = variant;
        config.simulation.ckpt_io = ckpt_io;
        if (args.Has("--faults")) {
          config.simulation.fault = FaultProcessConfig::Calibrated();
        }
        configs.push_back(std::move(config));
      }
    }
  }

  const ExperimentPool pool(args.GetInt("--threads", 0));
  std::printf("sweeping %zu scheduler(s) x %zu retry policy(ies) x %zu "
              "seed(s) over %d days on %d worker thread(s)...\n\n",
              scheduler_names.size(), retry_names.size(), seeds.size(), days,
              pool.num_threads());
  const std::vector<ExperimentRun> runs = pool.RunMany(std::move(configs));

  TextTable table({"scheduler", "retry", "seed", "jobs", "passed %",
                   "mean queue (min)", "mean util (%)", "preemptions"});
  for (size_t s = 0; s < scheduler_names.size(); ++s) {
    for (size_t r = 0; r < retry_names.size(); ++r) {
      for (size_t k = 0; k < seeds.size(); ++k) {
        const ExperimentRun& run =
            runs[(s * retry_names.size() + r) * seeds.size() + k];
        const auto status = AnalyzeStatus(run.result.jobs);
        double queue_sum = 0.0;
        for (const auto& job : run.result.jobs) {
          queue_sum += ToMinutes(job.InitialQueueDelay());
        }
        const double mean_queue =
            run.result.jobs.empty()
                ? 0.0
                : queue_sum / static_cast<double>(run.result.jobs.size());
        table.AddRow({scheduler_names[s], retry_names[r], std::to_string(seeds[k]),
                      std::to_string(run.num_jobs),
                      FormatPercent(status.by_status[0].count_share, 1),
                      FormatDouble(mean_queue, 2),
                      FormatDouble(AnalyzeUtilization(run.result.jobs).all.Mean(), 1),
                      std::to_string(run.result.preemptions)});
      }
    }
  }
  std::printf("%s\n", table.Render().c_str());
  return 0;
}

// p95 of initial queueing delay, in minutes (what bench/fleet_router and the
// fleet summary table report).
double P95QueueDelayMinutes(const std::vector<JobRecord>& jobs) {
  std::vector<double> delays;
  delays.reserve(jobs.size());
  for (const JobRecord& job : jobs) {
    delays.push_back(ToMinutes(job.InitialQueueDelay()));
  }
  if (delays.empty()) {
    return 0.0;
  }
  std::sort(delays.begin(), delays.end());
  const size_t index = static_cast<size_t>(
      0.95 * static_cast<double>(delays.size() - 1) + 0.5);
  return delays[std::min(index, delays.size() - 1)];
}

// `fleet`: run N clusters behind the front-door router and summarize routing,
// queueing, and the fleet GPU-time ledger. All three fleet knobs are strictly
// validated: a malformed --clusters/--router/--spill-threshold exits 1 with a
// clear message and never silently defaults.
int RunFleet(const Args& args) {
  const std::string clusters_spec = args.Get("--clusters", "3");
  std::vector<ClusterConfig> cluster_configs;
  std::string error;
  if (!ParseClustersSpec(clusters_spec, &cluster_configs, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  const std::string router_name = args.Get("--router", "pinned");
  RouterConfig router;
  if (!RouterPolicyFromString(router_name, &router.policy)) {
    std::fprintf(stderr,
                 "--router '%s' is invalid: expected pinned, least-loaded, or "
                 "spillover\n",
                 router_name.c_str());
    return 1;
  }
  if (args.values.count("--spill-threshold") > 0) {
    if (router.policy != RouterPolicy::kSpillover) {
      std::fprintf(stderr,
                   "--spill-threshold only applies to --router spillover\n");
      return 1;
    }
    const std::string text = args.Get("--spill-threshold", "");
    long threshold = 0;
    if (!ParseStrictLong(text, &threshold) || threshold < 0) {
      std::fprintf(stderr,
                   "--spill-threshold '%s' is invalid: expected a non-negative "
                   "home queue depth\n",
                   text.c_str());
      return 1;
    }
    router.spill_threshold = threshold;
  }

  const int days = args.GetInt("--days", 3);
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("--seed", 42));
  const bool collect_spans = args.Has("--collect-spans");
  FleetConfig config;
  config.router = router;
  config.collect_events = true;
  config.collect_telemetry = true;
  config.collect_spans = collect_spans;
  config.threads = args.GetInt("--threads", 0);
  for (size_t i = 0; i < cluster_configs.size(); ++i) {
    config.clusters.push_back(
        {"cluster" + std::to_string(i),
         FleetClusterExperiment(cluster_configs[i], days, seed,
                                static_cast<int>(i))});
  }

  std::printf("simulating a %zu-cluster fleet for %d days (seed %llu, router "
              "%s)...\n",
              config.clusters.size(), days,
              static_cast<unsigned long long>(seed), router_name.c_str());
  FleetSimulation fleet(std::move(config));
  const FleetResult result = fleet.Run();
  std::printf("%lld jobs routed (%lld off their home cluster)\n\n",
              static_cast<long long>(result.total_jobs),
              static_cast<long long>(result.spilled_jobs));

  FleetDashboardSection section;
  section.router = router_name;
  section.total_jobs = result.total_jobs;
  section.spilled_jobs = result.spilled_jobs;
  TextTable table({"cluster", "GPUs", "jobs", "home", "in", "away",
                   "mean occ %", "p95 queue (min)"});
  for (size_t i = 0; i < result.clusters.size(); ++i) {
    const FleetClusterResult& cluster = result.clusters[i];
    double occupancy_sum = 0.0;
    for (const TelemetrySample& s : cluster.telemetry.samples()) {
      occupancy_sum += s.occupancy;
    }
    const double mean_occ =
        cluster.telemetry.samples().empty()
            ? 0.0
            : occupancy_sum /
                  static_cast<double>(cluster.telemetry.samples().size());
    const double p95 = P95QueueDelayMinutes(cluster.result.jobs);
    const int gpus = cluster_configs[i].TotalGpus();
    table.AddRow({cluster.name, std::to_string(gpus),
                  std::to_string(cluster.num_jobs),
                  std::to_string(cluster.home_jobs),
                  std::to_string(cluster.routed_in),
                  std::to_string(cluster.routed_away),
                  FormatDouble(mean_occ * 100.0, 1), FormatDouble(p95, 2)});
    section.clusters.push_back({cluster.name, gpus, cluster.num_jobs,
                                cluster.home_jobs, cluster.routed_in,
                                cluster.routed_away, mean_occ, p95});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("fleet GPU-time ledger: %.1f allocated GPU-hours = %.1f useful "
              "+ %.1f fault-lost + %.1f ckpt-overhead + %.1f ckpt-stall\n",
              result.allocated_gpu_seconds / 3600.0,
              result.useful_gpu_seconds / 3600.0,
              result.machine_fault_lost_gpu_seconds / 3600.0,
              result.ckpt_overhead_gpu_seconds / 3600.0,
              result.ckpt_stall_gpu_seconds / 3600.0);

  RunManifest manifest;
  manifest.tool = "phillyctl";
  manifest.command = "fleet";
  manifest.seed = seed;
  manifest.days = days;
  manifest.threads = args.GetInt("--threads", 0);
  manifest.knobs["clusters"] = clusters_spec;
  manifest.knobs["router"] = router_name;
  if (router.policy == RouterPolicy::kSpillover) {
    manifest.knobs["spill-threshold"] = std::to_string(router.spill_threshold);
  }
  if (collect_spans) {
    manifest.knobs["collect-spans"] = "on";
  }

  const std::string out_dir = args.Get("--out", "");
  if (!out_dir.empty()) {
    std::filesystem::create_directories(out_dir);
    if (!WriteObsFile(out_dir + "/fleet_events.ndjson", "fleet route stream",
                      "fleet-events", &manifest, [&](std::ostream& out) {
                        result.route_events.WriteNdjson(out);
                      })) {
      return 1;
    }
    for (size_t i = 0; i < result.clusters.size(); ++i) {
      const FleetClusterResult& cluster = result.clusters[i];
      const std::string base = out_dir + "/" + cluster.name;
      if (!WriteObsFile(base + ".events.ndjson", "event log",
                        (cluster.name + "-events").c_str(), &manifest,
                        [&](std::ostream& out) {
                          cluster.events.WriteNdjson(out);
                        })) {
        return 1;
      }
      // Same embedded digest the simulate path writes, so each per-cluster
      // stream verifies under `analyze --telemetry` on its own.
      TelemetryDigest digest = DigestOfSamples(cluster.telemetry.samples());
      const TelemetryDigest jobs_half = ComputeUtilDigest(cluster.result.jobs);
      digest.jobs = jobs_half.jobs;
      digest.segments = jobs_half.segments;
      digest.util_weight = jobs_half.util_weight;
      digest.util_weighted_sum = jobs_half.util_weighted_sum;
      if (!WriteObsFile(base + ".telemetry.ndjson", "telemetry",
                        (cluster.name + "-telemetry").c_str(), &manifest,
                        [&](std::ostream& out) {
                          cluster.telemetry.WriteNdjson(out, &digest);
                        })) {
        return 1;
      }
      if (collect_spans) {
        if (!WriteObsFile(base + ".spans.ndjson", "span stream",
                          (cluster.name + "-spans").c_str(), &manifest,
                          [&](std::ostream& out) {
                            cluster.spans.log().WriteNdjson(out);
                          })) {
          return 1;
        }
      }
    }
    std::printf("fleet streams written to %s/\n", out_dir.c_str());
  }

  const std::string html_out = args.Get("--html", "");
  if (!html_out.empty()) {
    // Fleet-wide inputs: concatenated streams (rollup-of-concatenation equals
    // the merged fleet rollup) plus the routing section.
    std::vector<TelemetrySample> all_samples;
    std::vector<SchedEvent> all_events;
    std::vector<JobRecord> all_jobs;
    std::vector<SpanRecord> all_spans;
    for (const FleetClusterResult& cluster : result.clusters) {
      all_samples.insert(all_samples.end(), cluster.telemetry.samples().begin(),
                         cluster.telemetry.samples().end());
      all_events.insert(all_events.end(), cluster.events.events().begin(),
                        cluster.events.events().end());
      all_jobs.insert(all_jobs.end(), cluster.result.jobs.begin(),
                      cluster.result.jobs.end());
      all_spans.insert(all_spans.end(), cluster.spans.log().spans().begin(),
                       cluster.spans.log().spans().end());
    }
    all_events.insert(all_events.end(), result.route_events.events().begin(),
                      result.route_events.events().end());
    HtmlDashboardInput dashboard;
    dashboard.title = "philly fleet (" + router_name + ") seed " +
                      std::to_string(seed) + ", " + std::to_string(days) +
                      " days";
    dashboard.samples = &all_samples;
    dashboard.events = &all_events;
    dashboard.jobs = &all_jobs;
    if (collect_spans) {
      dashboard.spans = &all_spans;
    }
    dashboard.fleet = &section;
    if (!WriteObsFile(html_out, "dashboard", "dashboard", &manifest,
                      [&](std::ostream& out) {
                        out << RenderHtmlDashboard(dashboard);
                      })) {
      return 1;
    }
    std::printf("fleet dashboard written to %s\n", html_out.c_str());
  }

  if (!out_dir.empty()) {
    const std::string manifest_path = out_dir + "/manifest.json";
    if (!manifest.WriteFile(manifest_path)) {
      std::fprintf(stderr, "cannot write %s\n", manifest_path.c_str());
      return 1;
    }
    std::printf("manifest written to %s\n", manifest_path.c_str());
  }
  return 0;
}

// `explain --job ID --spans FILE`: reconstruct one job's causal timeline from
// the span stream alone. Both inputs are strictly validated — a malformed job
// id, an unreadable or unparseable stream, or a job with no spans all exit 1
// with a message naming exactly what was wrong.
int RunExplain(const Args& args) {
  if (args.values.count("--job") == 0) {
    std::fprintf(stderr, "explain requires --job ID\n");
    return 1;
  }
  const std::string job_text = args.Get("--job", "");
  long job_id = 0;
  if (!ParseStrictLong(job_text, &job_id) || job_id <= 0) {
    std::fprintf(stderr,
                 "--job '%s' is invalid: expected a positive integer job id\n",
                 job_text.c_str());
    return 1;
  }
  if (args.values.count("--spans") == 0) {
    std::fprintf(stderr, "explain requires --spans FILE\n");
    return 1;
  }
  const std::string path = args.Get("--spans", "");
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open span stream %s\n", path.c_str());
    return 1;
  }
  std::string error;
  const std::vector<SpanRecord> spans = SpanLog::ReadNdjson(in, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "failed to parse %s: %s\n", path.c_str(),
                 error.c_str());
    return 1;
  }
  const std::string timeline =
      RenderJobExplanation(static_cast<JobId>(job_id), spans);
  if (timeline.empty()) {
    std::fprintf(stderr, "no spans for job %ld in %s (%zu spans read)\n",
                 job_id, path.c_str(), spans.size());
    return 1;
  }
  std::printf("%s", timeline.c_str());
  return 0;
}

}  // namespace
}  // namespace philly

int main(int argc, char** argv) {
  const philly::Args args = philly::Parse(argc, argv);
  if (args.command == "simulate") {
    return philly::RunSimulateOrReport(args, /*write_output=*/true);
  }
  if (args.command == "report") {
    return philly::RunSimulateOrReport(args, /*write_output=*/false);
  }
  if (args.command == "analyze") {
    return philly::RunAnalyze(args);
  }
  if (args.command == "sweep") {
    return philly::RunSweep(args);
  }
  if (args.command == "fleet") {
    return philly::RunFleet(args);
  }
  if (args.command == "explain") {
    return philly::RunExplain(args);
  }
  return philly::Usage();
}
